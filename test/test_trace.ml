(* The tracing subsystem: ring-buffer semantics, sink output shape, and
   the end-to-end wiring through a real (tiny) cluster run. *)

module Event = Rcc_trace.Event
module Recorder = Rcc_trace.Recorder
module Sink = Rcc_trace.Sink
module Engine = Rcc_sim.Engine

let check = Alcotest.check

let ev ?(replica = 0) ?(instance = 0) ~at payload =
  { Event.at; replica; instance; payload }

let propose ~at round = ev ~at (Event.Slot_propose { round })

(* --- recorder ------------------------------------------------------------- *)

let test_ring_wrap () =
  let r = Recorder.create ~capacity:4 () in
  check Alcotest.int "capacity" 4 (Recorder.capacity r);
  for round = 0 to 9 do
    Recorder.record r (propose ~at:(round * 10) round)
  done;
  check Alcotest.int "recorded counts everything" 10 (Recorder.recorded r);
  check Alcotest.int "dropped = recorded - capacity" 6 (Recorder.dropped r);
  check Alcotest.int "stored capped at capacity" 4 (Recorder.stored r);
  (* Only the trailing window survives, oldest first. *)
  let rounds =
    List.filter_map
      (fun (e : Event.t) ->
        match e.Event.payload with
        | Event.Slot_propose { round } -> Some round
        | _ -> None)
      (Recorder.to_list r)
  in
  check Alcotest.(list int) "trailing window in order" [ 6; 7; 8; 9 ] rounds

let test_ring_under_capacity () =
  let r = Recorder.create ~capacity:8 () in
  Recorder.record r (propose ~at:1 0);
  Recorder.record r (propose ~at:2 1);
  check Alcotest.int "no drops below capacity" 0 (Recorder.dropped r);
  check Alcotest.int "stored" 2 (Recorder.stored r);
  let count = ref 0 in
  Recorder.iter r (fun _ -> incr count);
  check Alcotest.int "iter visits stored events" 2 !count

(* --- sinks ---------------------------------------------------------------- *)

let test_jsonl_shape () =
  let line =
    Sink.jsonl_line
      (ev ~replica:3 ~instance:1 ~at:1500
         (Event.Net_send { kind = "preprepare"; size = 512; src = 3; dst = 0 }))
  in
  check Alcotest.bool "single line" true (not (String.contains line '\n'));
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "contains %s" needle) true
        (let rec find i =
           i + String.length needle <= String.length line
           && (String.sub line i (String.length needle) = needle || find (i + 1))
         in
         find 0))
    [
      {|"ts":1500|};
      {|"replica":3|};
      {|"instance":1|};
      {|"ev":"net_send"|};
      {|"kind":"preprepare"|};
      {|"size":512|};
    ]

let test_jsonl_one_line_per_event () =
  let r = Recorder.create ~capacity:16 () in
  for i = 0 to 4 do
    Recorder.record r (propose ~at:i i)
  done;
  let out = Sink.jsonl r in
  let lines = String.split_on_char '\n' (String.trim out) in
  check Alcotest.int "five lines" 5 (List.length lines);
  List.iter
    (fun line ->
      check Alcotest.bool "each line is a json object" true
        (String.length line > 0
        && line.[0] = '{'
        && line.[String.length line - 1] = '}'))
    lines

let test_chrome_structure () =
  let r = Recorder.create ~capacity:16 () in
  Recorder.record r (propose ~at:1000 0);
  Recorder.record r
    (ev ~replica:1 ~instance:(-1) ~at:2000 (Event.Span { track = "nic-1"; dur = 500 }));
  Recorder.record r
    (ev ~replica:(-1) ~instance:(-1) ~at:3000
       (Event.Violation { name = "liveness-commits" }));
  let doc = Sink.chrome r in
  check Alcotest.bool "starts as an object" true (doc.[0] = '{');
  check Alcotest.bool "ends the object" true (doc.[String.length doc - 1] = '}');
  let contains needle =
    let rec find i =
      i + String.length needle <= String.length doc
      && (String.sub doc i (String.length needle) = needle || find (i + 1))
    in
    find 0
  in
  check Alcotest.bool "has traceEvents" true (contains {|"traceEvents"|});
  check Alcotest.bool "span is a duration slice" true (contains {|"ph":"X"|});
  check Alcotest.bool "span duration in us" true (contains {|"dur":0.500|});
  check Alcotest.bool "instants present" true (contains {|"ph":"i"|});
  check Alcotest.bool "process metadata present" true (contains {|"process_name"|});
  check Alcotest.bool "violation is global-scoped" true (contains {|"s":"g"|})

(* --- engine wiring -------------------------------------------------------- *)

let test_engine_tracing_toggle () =
  let engine = Engine.create () in
  check Alcotest.bool "tracing off by default" false (Engine.tracing engine);
  (* With no recorder installed, trace is a no-op. *)
  Engine.trace engine ~replica:0 ~instance:0 (Event.Slot_propose { round = 0 });
  let r = Recorder.create ~capacity:8 () in
  Engine.set_tracer engine r;
  check Alcotest.bool "tracing on" true (Engine.tracing engine);
  Engine.trace engine ~replica:0 ~instance:0 (Event.Slot_propose { round = 1 });
  check Alcotest.int "only post-install events recorded" 1 (Recorder.recorded r)

(* --- end to end ----------------------------------------------------------- *)

(* A tiny traced MultiP run: the trace must carry wire, compute, slot and
   per-instance lifecycle events, and the report must break the load down
   per instance. Untraced runs of the same config stay event-free. *)
let test_cluster_end_to_end () =
  let cfg =
    Rcc_runtime.Config.make ~protocol:Rcc_runtime.Config.MultiP ~n:4
      ~batch_size:5 ~clients:12 ~records:1_000
      ~duration:(Engine.of_seconds 0.3)
      ~warmup:(Engine.of_seconds 0.1)
      ~seed:11 ()
  in
  let tracer = Recorder.create ~capacity:100_000 () in
  let report = Rcc_runtime.Cluster.run_config ~tracer cfg in
  check Alcotest.bool "transactions committed" true
    (report.Rcc_runtime.Report.committed_txns > 0);
  let seen = Hashtbl.create 16 in
  Recorder.iter tracer (fun e ->
      Hashtbl.replace seen (Event.name e.Event.payload) ());
  List.iter
    (fun name ->
      check Alcotest.bool (Printf.sprintf "trace has %s events" name) true
        (Hashtbl.mem seen name))
    [ "net_send"; "net_deliver"; "span"; "slot_propose"; "slot_accept";
      "slot_exec" ];
  (* Per-instance report rows: z = f+1 = 2 instances, txns attributed. *)
  let per = report.Rcc_runtime.Report.per_instance in
  check Alcotest.int "one row per instance" 2 (Array.length per);
  let attributed =
    Array.fold_left
      (fun acc s -> acc + s.Rcc_runtime.Report.i_txns)
      0 per
  in
  check Alcotest.int "instance rows sum to the aggregate"
    report.Rcc_runtime.Report.committed_txns attributed;
  (* The chrome document for a real run parses far enough to embed every
     recorded instant. *)
  let doc = Sink.chrome tracer in
  check Alcotest.bool "chrome doc non-trivial" true (String.length doc > 1000)

let test_cluster_untraced_is_clean () =
  let cfg =
    Rcc_runtime.Config.make ~protocol:Rcc_runtime.Config.MultiP ~n:4
      ~batch_size:5 ~clients:12 ~records:1_000
      ~duration:(Engine.of_seconds 0.2)
      ~warmup:(Engine.of_seconds 0.05)
      ~seed:11 ()
  in
  let report = Rcc_runtime.Cluster.run_config cfg in
  check Alcotest.bool "untraced run still commits" true
    (report.Rcc_runtime.Report.committed_txns > 0)

let suite =
  ( "trace",
    [
      Alcotest.test_case "ring wrap" `Quick test_ring_wrap;
      Alcotest.test_case "ring under capacity" `Quick test_ring_under_capacity;
      Alcotest.test_case "jsonl shape" `Quick test_jsonl_shape;
      Alcotest.test_case "jsonl one line per event" `Quick
        test_jsonl_one_line_per_event;
      Alcotest.test_case "chrome structure" `Quick test_chrome_structure;
      Alcotest.test_case "engine tracing toggle" `Quick
        test_engine_tracing_toggle;
      Alcotest.test_case "cluster end to end" `Slow test_cluster_end_to_end;
      Alcotest.test_case "cluster untraced" `Slow test_cluster_untraced_is_clean;
    ] )
