(* Runtime-layer tests: configuration derivation, report formatting,
   experiment profiles. *)

module Config = Rcc_runtime.Config
module Report = Rcc_runtime.Report
module Experiment = Rcc_runtime.Experiment
module Engine = Rcc_sim.Engine

let check = Alcotest.check

let test_config_derivation () =
  let cfg = Config.make ~protocol:Config.MultiP ~n:32 () in
  check Alcotest.int "f = (n-1)/3" 10 cfg.Config.f;
  check Alcotest.int "z = f+1" 11 cfg.Config.z;
  let pbft = Config.make ~protocol:Config.Pbft ~n:32 () in
  check Alcotest.int "standalone z = 1" 1 pbft.Config.z;
  let forced = Config.make ~protocol:Config.MultiP ~n:32 ~z:4 () in
  check Alcotest.int "explicit z wins" 4 forced.Config.z;
  Alcotest.check_raises "n too small" (Invalid_argument "Config.make: need n >= 4")
    (fun () -> ignore (Config.make ~protocol:Config.Pbft ~n:3 ()))

let test_client_instances () =
  let hs = Config.make ~protocol:Config.Hotstuff ~n:16 () in
  check Alcotest.int "hotstuff spreads over all n" 16 (Config.client_instances hs);
  let mp = Config.make ~protocol:Config.MultiP ~n:16 () in
  check Alcotest.int "multip spreads over z" 6 (Config.client_instances mp);
  check Alcotest.int "total clients" mp.Config.clients (Config.total_clients mp)

let test_quorum_mapping () =
  let q p = Config.quorum (Config.make ~protocol:p ~n:4 ()) in
  check Alcotest.bool "zyzzyva waits all n" true
    (q Config.Zyzzyva = Rcc_replica.Client_pool.All_n_speculative);
  check Alcotest.bool "multiz inherits" true
    (q Config.MultiZ = Rcc_replica.Client_pool.All_n_speculative);
  check Alcotest.bool "pbft f+1" true
    (q Config.Pbft = Rcc_replica.Client_pool.Majority_fplus1);
  check Alcotest.bool "multic f+1" true
    (q Config.MultiC = Rcc_replica.Client_pool.Majority_fplus1)

let test_contention_factor () =
  (* 10 + z threads on 16 cores: no pressure at z=1, pressure at z=11. *)
  let factor z =
    Config.contention_factor (Config.make ~protocol:Config.MultiP ~n:34 ~z ())
  in
  check (Alcotest.float 1e-9) "z=1 free" 1.0 (factor 1);
  check Alcotest.bool "z=11 pays" true (factor 11 > 1.0);
  check Alcotest.bool "monotone in z" true (factor 16 > factor 11)

let test_protocol_names () =
  List.iter
    (fun (p, name) -> check Alcotest.string "name" name (Config.protocol_name p))
    [
      (Config.Pbft, "pbft");
      (Config.Zyzzyva, "zyzzyva");
      (Config.Hotstuff, "hotstuff");
      (Config.MultiP, "multip");
      (Config.MultiZ, "multiz");
      (Config.Cft, "cft");
      (Config.MultiC, "multic");
    ];
  check Alcotest.int "paper protocols in the figures" 5
    (List.length Config.all_protocols)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_report_formatting () =
  let report =
    {
      Report.protocol = "pbft";
      n = 4;
      batch_size = 100;
      throughput = 123456.0;
      avg_latency = 0.0123;
      p50_latency = 0.01;
      p99_latency = 0.02;
      committed_txns = 1000;
      timeline = [| (0.0, 1.0) |];
      exec_timeline = [||];
      view_changes = 1;
      collusions_detected = 0;
      contract_bytes = 0;
      replacements = 0;
      messages = 10;
      bytes_sent = 100;
      ledger_rounds = 10;
      ledger_valid = true;
      exec_utilization = 0.5;
      exec_pool_utilization = 0.0;
      worker_utilization = 0.25;
      sim_events = 99;
      wall_seconds = 0.5;
      snap_installs = 0;
      snap_rejects = 0;
      snap_rounds_skipped = 0;
      snap_bytes_in = 0;
      snap_bytes_out = 0;
      jrn_appends = 0;
      jrn_flushes = 0;
      jrn_bytes = 0;
      jrn_snapshots = 0;
      jrn_faults = 0;
      jrn_restarts = 0;
      jrn_replayed_rounds = 0;
      jrn_replayed_txns = 0;
      open_loop = None;
      per_instance = [||];
    }
  in
  let row = Report.row report in
  check Alcotest.bool "row mentions protocol" true
    (String.length row > 0 && String.sub row 0 4 = "pbft");
  check Alcotest.bool "header aligns" true (String.length (Report.header ()) > 0);
  let pp = Format.asprintf "%a" Report.pp report in
  check Alcotest.bool "pp includes throughput" true (contains pp "123456")

let test_experiment_profiles () =
  check Alcotest.bool "full longer than quick" true
    (Experiment.duration `Full > Experiment.duration `Quick);
  check Alcotest.bool "warmup shorter than duration" true
    (Experiment.warmup `Full < Experiment.duration `Full
    && Experiment.warmup `Quick < Experiment.duration `Quick)

let test_experiment_quick_run () =
  (* A tiny end-to-end sweep through the Experiment API itself. *)
  let results =
    Experiment.sweep_batch `Quick ~protocols:[ Config.MultiC ] ~n:4
      ~batch_sizes:[ 10 ]
  in
  match results with
  | [ (Config.MultiC, 10, report) ] ->
      check Alcotest.bool "committed" true (report.Report.throughput > 0.0)
  | _ -> Alcotest.fail "unexpected sweep shape"

let suite =
  ( "runtime",
    [
      Alcotest.test_case "config derivation" `Quick test_config_derivation;
      Alcotest.test_case "client instances" `Quick test_client_instances;
      Alcotest.test_case "quorum mapping" `Quick test_quorum_mapping;
      Alcotest.test_case "contention factor" `Quick test_contention_factor;
      Alcotest.test_case "protocol names" `Quick test_protocol_names;
      Alcotest.test_case "report formatting" `Quick test_report_formatting;
      Alcotest.test_case "experiment profiles" `Quick test_experiment_profiles;
      Alcotest.test_case "experiment quick run" `Slow test_experiment_quick_run;
    ] )
