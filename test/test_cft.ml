(* Crash-fault-tolerant instance tests (the §8 extension). *)

module H = Harness.Make (Rcc_cft.Cft_instance)
module C = Rcc_cft.Cft_instance

let check = Alcotest.check

let test_two_phase_commit () =
  let t = H.create ~n:4 () in
  H.submit t ~replica:0 (Harness.make_batch 1);
  H.run t 0.01;
  for r = 0 to 3 do
    check Alcotest.(option int)
      (Printf.sprintf "replica %d accepted" r)
      (Some 1)
      (H.accepted_batch_id t ~replica:r ~round:0)
  done;
  check Alcotest.bool "backup acked" true (C.acked_round (H.inst t 1) ~round:0)

let test_linear_message_complexity () =
  (* Unlike PBFT, backups only talk to the primary: replica 2 must accept
     without ever hearing from replica 1 and vice versa — verified
     indirectly by the pipelined run finishing despite majority = 3 with
     only primary-relayed communication. *)
  let t = H.create ~n:5 () in
  for id = 0 to 9 do
    H.submit t ~replica:0 (Harness.make_batch id)
  done;
  H.run t 0.05;
  for round = 0 to 9 do
    check Alcotest.(option int)
      (Printf.sprintf "round %d" round)
      (Some round)
      (H.accepted_batch_id t ~replica:4 ~round)
  done

let test_survives_minority_crash () =
  let t = H.create ~n:5 () in
  (* n=5 tolerates 2 crash faults with majority 3. *)
  H.kill t 3;
  H.kill t 4;
  H.submit t ~replica:0 (Harness.make_batch 8);
  H.run t 0.05;
  check Alcotest.(option int) "accepted with minority down" (Some 8)
    (H.accepted_batch_id t ~replica:1 ~round:0)

let test_view_change_on_dark_primary () =
  let byz self =
    if self = 0 then Rcc_replica.Byz.dark_primary ~victims:[ 1; 2; 3 ] ()
    else Rcc_replica.Byz.honest
  in
  let t = H.create ~n:4 ~byz ~timeout:(Rcc_sim.Engine.ms 50) () in
  H.submit t ~replica:0 (Harness.make_batch 1);
  H.run t 1.0;
  (* Nobody but the primary saw the proposal; with no evidence there is no
     round to blame — submit again after making the backups aware via a
     second batch routed through a view change... here we simply check the
     healthy case: the primary's own accept does not complete a majority. *)
  check Alcotest.(option int) "fully dark proposal cannot commit" None
    (H.accepted_batch_id t ~replica:1 ~round:0)

let test_standalone_election () =
  (* Drive the majority election directly: three of four replicas vote
     for view 1, whose primary is replica 1. *)
  let t = H.create ~n:4 () in
  let inst1 = H.inst t 1 in
  List.iter
    (fun src ->
      C.handle inst1 ~src
        (Rcc_messages.Msg.View_change
           { instance = 0; new_view = 1; blamed = 0; round = 0; last_exec = -1;
             signature = "" }))
    [ 0; 2; 3 ];
  check Alcotest.int "replica 1 installs itself" 1 (C.primary inst1);
  check Alcotest.int "view advanced" 1 (C.view inst1);
  (* And it can lead immediately. *)
  H.submit t ~replica:1 (Harness.make_batch 3);
  H.run t 0.05;
  check Alcotest.(option int) "post-election proposal accepted at self" (Some 3)
    (H.accepted_batch_id t ~replica:1 ~round:0)

let test_unified_set_primary () =
  let t = H.create ~n:4 ~unified:true () in
  for r = 0 to 3 do
    C.set_primary (H.inst t r) 2 ~view:1
  done;
  H.submit t ~replica:2 (Harness.make_batch 9);
  H.run t 0.05;
  check Alcotest.(option int) "new primary leads" (Some 9)
    (H.accepted_batch_id t ~replica:0 ~round:0)

let test_held_batch_mid_transfer () =
  (* Regression: a batch submitted inside the leader-transfer grace
     window used to be proposed over unknown in-flight slots (or, once
     the window existed, dropped); it must be held and flushed when the
     takeover completes. *)
  let t = H.create ~n:4 ~unified:true () in
  for r = 0 to 3 do
    C.set_primary (H.inst t r) 2 ~view:1
  done;
  H.submit t ~replica:2 (Harness.make_batch 5);
  H.run t 0.1;
  for r = 0 to 3 do
    check Alcotest.(option int)
      (Printf.sprintf "replica %d accepted the held batch" r)
      (Some 5)
      (H.accepted_batch_id t ~replica:r ~round:0)
  done

let test_stale_acks_cannot_certify () =
  (* Regression: a majority of acks for a round the primary holds no
     batch for used to broadcast COMMIT-NOTIFY with digest "" and mark
     the round notified — so when the real batch later arrived, the
     notify was never re-sent and backups stalled forever. The empty
     digest must not certify; the round completes once the batch does. *)
  let t = H.create ~n:5 () in
  let inst0 = H.inst t 0 in
  List.iter
    (fun src ->
      C.handle inst0 ~src
        (Rcc_messages.Msg.Prepare
           { instance = 0; view = 0; seq = 0; digest = "stale" }))
    [ 1; 2; 3 ];
  H.submit t ~replica:0 (Harness.make_batch 5);
  H.run t 0.05;
  for r = 0 to 4 do
    check Alcotest.(option int)
      (Printf.sprintf "replica %d accepted the real batch" r)
      (Some 5)
      (H.accepted_batch_id t ~replica:r ~round:0)
  done

let test_adopt () =
  let t = H.create ~n:4 () in
  H.submit t ~replica:0 (Harness.make_batch 4);
  H.run t 0.01;
  let t2 = H.create ~n:4 () in
  (match C.accepted_batch (H.inst t 1) ~round:0 with
  | Some (batch, cert) -> C.adopt (H.inst t2 3) ~round:0 batch ~cert
  | None -> Alcotest.fail "source should have accepted");
  check Alcotest.(option int) "adopted across deployments" (Some 4)
    (H.accepted_batch_id t2 ~replica:3 ~round:0)

let agreement_property =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25 ~name:"cft: agreement over random workloads"
       QCheck2.Gen.(pair (int_range 1 15) (oneofl [ 4; 5; 7 ]))
       (fun (nbatches, n) ->
         let t = H.create ~n () in
         for id = 0 to nbatches - 1 do
           H.submit t ~replica:0 (Harness.make_batch id)
         done;
         H.run t 0.2;
         let ok = ref true in
         for round = 0 to nbatches - 1 do
           let reference = H.accepted_batch_id t ~replica:0 ~round in
           if Option.is_none reference then ok := false;
           for r = 1 to n - 1 do
             if H.accepted_batch_id t ~replica:r ~round <> reference then ok := false
           done
         done;
         !ok))

let suite =
  ( "cft",
    [
      agreement_property;
      Alcotest.test_case "two-phase commit" `Quick test_two_phase_commit;
      Alcotest.test_case "linear pipelining" `Quick test_linear_message_complexity;
      Alcotest.test_case "minority crash" `Quick test_survives_minority_crash;
      Alcotest.test_case "dark primary cannot commit" `Quick test_view_change_on_dark_primary;
      Alcotest.test_case "standalone election" `Quick test_standalone_election;
      Alcotest.test_case "unified set_primary" `Quick test_unified_set_primary;
      Alcotest.test_case "held batch mid-transfer" `Quick
        test_held_batch_mid_transfer;
      Alcotest.test_case "stale acks cannot certify" `Quick
        test_stale_acks_cannot_certify;
      Alcotest.test_case "adopt" `Quick test_adopt;
    ] )
