(* Zyzzyva instance tests: speculative in-order acceptance, history
   chaining, commit certificates, dark-replica behaviour. *)

module H = Harness.Make (Rcc_zyzzyva.Zyzzyva_instance)
module Z = Rcc_zyzzyva.Zyzzyva_instance
module Byz = Rcc_replica.Byz
module Msg = Rcc_messages.Msg

let check = Alcotest.check

let test_speculative_accept () =
  let t = H.create ~n:4 () in
  H.submit t ~replica:0 (Harness.make_batch 1);
  H.run t 0.01;
  for r = 0 to 3 do
    check Alcotest.(option int)
      (Printf.sprintf "replica %d accepted speculatively" r)
      (Some 1)
      (H.accepted_batch_id t ~replica:r ~round:0)
  done;
  (* Acceptance is flagged speculative. *)
  let acc = Hashtbl.find (H.node t 1).H.accepted 0 in
  check Alcotest.bool "speculative flag" true acc.Rcc_replica.Acceptance.speculative;
  check Alcotest.bool "history digest present" true
    (String.length acc.Rcc_replica.Acceptance.history > 0)

let test_history_chains_equal () =
  let t = H.create ~n:4 () in
  for id = 0 to 9 do
    H.submit t ~replica:0 (Harness.make_batch id)
  done;
  H.run t 0.05;
  let h1 = Z.history_digest (H.inst t 1) in
  let h2 = Z.history_digest (H.inst t 2) in
  check Alcotest.string "histories agree" (Rcc_common.Bytes_util.hex h1)
    (Rcc_common.Bytes_util.hex h2);
  (* Histories actually chain: per-round history digests differ. *)
  let a0 = Hashtbl.find (H.node t 1).H.accepted 0 in
  let a1 = Hashtbl.find (H.node t 1).H.accepted 1 in
  check Alcotest.bool "chained digests differ" false
    (String.equal a0.Rcc_replica.Acceptance.history a1.Rcc_replica.Acceptance.history)

let test_in_order_acceptance () =
  (* A replica buffering an out-of-order ORDER-REQUEST accepts only once
     the gap fills, preserving sequence order. *)
  let t = H.create ~n:4 () in
  let b0 = Harness.make_batch 0 and b1 = Harness.make_batch 1 in
  let inst3 = H.inst t 3 in
  Z.handle inst3 ~src:0
    (Msg.Order_request { instance = 0; view = 0; seq = 1; batch = b1; history = "" });
  check Alcotest.(option int) "gap blocks seq 1" None
    (H.accepted_batch_id t ~replica:3 ~round:1);
  Z.handle inst3 ~src:0
    (Msg.Order_request { instance = 0; view = 0; seq = 0; batch = b0; history = "" });
  check Alcotest.(option int) "seq 0 accepted" (Some 0)
    (H.accepted_batch_id t ~replica:3 ~round:0);
  check Alcotest.(option int) "seq 1 drains after gap fills" (Some 1)
    (H.accepted_batch_id t ~replica:3 ~round:1)

let test_commit_cert_local_commit () =
  let t = H.create ~n:4 () in
  H.submit t ~replica:0 (Harness.make_batch 3);
  H.run t 0.01;
  (* A client with 2f+1 matching spec-responses sends a commit cert. *)
  let inst1 = H.inst t 1 in
  Z.handle inst1 ~src:0
    (Msg.Commit_cert
       {
         cc_instance = 0;
         cc_seq = 0;
         cc_client = 0;
         cc_digest = "";
         cc_replicas = [ 0; 1; 2 ];
       });
  check Alcotest.int "committed watermark" 0 (Z.committed_upto inst1);
  check Alcotest.bool "local-commit sent to client" true
    (List.exists
       (function Msg.Local_commit _ -> true | _ -> false)
       (H.node t 1).H.responses)

let test_commit_cert_beyond_accept_triggers_blame () =
  (* A commit certificate for a sequence number the replica never accepted
     is client-relayed evidence that the primary skipped it. *)
  let t = H.create ~n:4 ~unified:true () in
  let inst2 = H.inst t 2 in
  Z.handle inst2 ~src:0
    (Msg.Commit_cert
       {
         cc_instance = 0;
         cc_seq = 5;
         cc_client = 0;
         cc_digest = "";
         cc_replicas = [ 0; 1; 3 ];
       });
  check Alcotest.bool "failure reported" true ((H.node t 2).H.failures <> [])

let test_non_primary_order_request_ignored () =
  let t = H.create ~n:4 () in
  let b = Harness.make_batch 6 in
  (* Replica 2 is not the primary of this instance. *)
  Z.handle (H.inst t 1) ~src:2
    (Msg.Order_request { instance = 0; view = 0; seq = 0; batch = b; history = "" });
  check Alcotest.(option int) "forged ordering ignored" None
    (H.accepted_batch_id t ~replica:1 ~round:0);
  (* Same message from a stale view. *)
  Z.handle (H.inst t 1) ~src:0
    (Msg.Order_request { instance = 0; view = 3; seq = 0; batch = b; history = "" });
  check Alcotest.(option int) "stale view ignored" None
    (H.accepted_batch_id t ~replica:1 ~round:0)

let test_dark_replica_stalls () =
  let byz self =
    if self = 0 then Byz.dark_primary ~victims:[ 2 ] () else Byz.honest
  in
  let t = H.create ~n:4 ~byz ~timeout:(Rcc_sim.Engine.ms 50) ~unified:true () in
  for id = 0 to 3 do
    H.submit t ~replica:0 (Harness.make_batch id)
  done;
  H.run t 0.4;
  check Alcotest.(option int) "victim accepted nothing" None
    (H.accepted_batch_id t ~replica:2 ~round:0);
  check Alcotest.(option int) "others fine" (Some 0)
    (H.accepted_batch_id t ~replica:1 ~round:0);
  (* Zyzzyva's fully-dark backup has no local evidence (no prepares exist);
     recovery must come from clients or RCC contracts. *)
  check Alcotest.(list int) "victim's incomplete rounds empty (no evidence)" []
    (Z.incomplete_rounds (H.inst t 2))

let test_adopt_fills_gap () =
  let byz self =
    if self = 0 then Byz.dark_primary ~victims:[ 2 ] () else Byz.honest
  in
  let t = H.create ~n:4 ~byz ~unified:true () in
  H.submit t ~replica:0 (Harness.make_batch 8);
  H.run t 0.01;
  (match Z.accepted_batch (H.inst t 1) ~round:0 with
  | Some (batch, cert) -> Z.adopt (H.inst t 2) ~round:0 batch ~cert
  | None -> Alcotest.fail "source replica should have accepted");
  check Alcotest.(option int) "victim adopted" (Some 8)
    (H.accepted_batch_id t ~replica:2 ~round:0)

let test_set_primary_reproposes () =
  let t = H.create ~n:4 ~unified:true () in
  for id = 0 to 2 do
    H.submit t ~replica:0 (Harness.make_batch id)
  done;
  H.run t 0.01;
  for r = 0 to 3 do
    Z.set_primary (H.inst t r) 1 ~view:1
  done;
  H.submit t ~replica:1 (Harness.make_batch 50);
  H.run t 0.05;
  let found =
    List.exists
      (fun round -> H.accepted_batch_id t ~replica:2 ~round = Some 50)
      [ 0; 1; 2; 3; 4 ]
  in
  check Alcotest.bool "new primary orders" true found

let agreement_property =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25
       ~name:"zyzzyva: speculative agreement over random workloads"
       QCheck2.Gen.(pair (int_range 1 15) (oneofl [ 4; 7 ]))
       (fun (nbatches, n) ->
         let t = H.create ~n () in
         for id = 0 to nbatches - 1 do
           H.submit t ~replica:0 (Harness.make_batch id)
         done;
         H.run t 0.2;
         let ok = ref true in
         for round = 0 to nbatches - 1 do
           let reference = H.accepted_batch_id t ~replica:0 ~round in
           if Option.is_none reference then ok := false;
           for r = 1 to n - 1 do
             if H.accepted_batch_id t ~replica:r ~round <> reference then ok := false
           done
         done;
         (* Speculative histories must agree too. *)
         let h0 = Z.history_digest (H.inst t 0) in
         for r = 1 to n - 1 do
           if not (String.equal h0 (Z.history_digest (H.inst t r))) then ok := false
         done;
         !ok))

let suite =
  ( "zyzzyva",
    [
      agreement_property;
      Alcotest.test_case "speculative accept" `Quick test_speculative_accept;
      Alcotest.test_case "history chains equal" `Quick test_history_chains_equal;
      Alcotest.test_case "in-order acceptance" `Quick test_in_order_acceptance;
      Alcotest.test_case "commit cert -> local commit" `Quick test_commit_cert_local_commit;
      Alcotest.test_case "commit cert blame" `Quick test_commit_cert_beyond_accept_triggers_blame;
      Alcotest.test_case "non-primary order ignored" `Quick
        test_non_primary_order_request_ignored;
      Alcotest.test_case "dark replica stalls" `Quick test_dark_replica_stalls;
      Alcotest.test_case "adopt fills gap" `Quick test_adopt_fills_gap;
      Alcotest.test_case "set_primary re-proposes" `Quick test_set_primary_reproposes;
    ] )
