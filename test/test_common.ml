(* Unit and property tests for the rcc_common substrate. *)

module Rng = Rcc_common.Rng
module Binary_heap = Rcc_common.Binary_heap
module Bitset = Rcc_common.Bitset
module Stats = Rcc_common.Stats
module Bytes_util = Rcc_common.Bytes_util

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- rng ---------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let child = Rng.split a in
  check Alcotest.bool "split differs from parent"
    (Rng.next_int64 child <> Rng.next_int64 a)
    true

let rng_bounds =
  qtest "rng: int within bound"
    QCheck2.Gen.(pair (int_range 1 1_000_000) small_int)
    (fun (bound, seed) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let rng_float_bounds =
  qtest "rng: float within bound"
    QCheck2.Gen.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let v = Rng.float rng 3.5 in
      v >= 0.0 && v < 3.5)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 11 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check
    Alcotest.(array int)
    "shuffle preserves elements" sorted
    (Array.init 50 (fun i -> i))

(* --- binary heap -------------------------------------------------------- *)

let heap_sorted =
  qtest "heap: pops in priority order"
    QCheck2.Gen.(list_size (int_range 0 200) (int_range (-1000) 1000))
    (fun priorities ->
      let h = Binary_heap.create ~dummy:0 () in
      List.iter (fun p -> Binary_heap.push h ~priority:p p) priorities;
      let rec drain last =
        match Binary_heap.pop h with
        | None -> true
        | Some (p, v) -> p = v && p >= last && drain p
      in
      drain min_int)

(* Model test: an arbitrary interleaving of pushes and pops must behave
   exactly like a stable-sorted reference list — same pop results in the
   same order (min priority first, FIFO among equal priorities), same
   emptiness at every step. Values record insertion order so stability
   violations are detected, not just mis-ordering of priorities. *)
let heap_model =
  qtest ~count:500 "heap: model equivalence (push/pop vs stable sort)"
    QCheck2.Gen.(
      list_size (int_range 0 300)
        (oneof [ map (fun p -> Some p) (int_range 0 20); pure None ]))
    (fun ops ->
      let h = Binary_heap.create ~dummy:(-1, -1) () in
      (* Reference: a sorted association list of (priority, insertion_id),
         kept stable by inserting after existing equal priorities. *)
      let model = ref [] in
      let insert p v =
        let rec go = function
          | (p', v') :: rest when p' <= p -> (p', v') :: go rest
          | rest -> (p, v) :: rest
        in
        model := go !model
      in
      let id = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | Some p ->
              let v = !id in
              incr id;
              Binary_heap.push h ~priority:p (p, v);
              insert p (p, v);
              Binary_heap.size h = List.length !model
          | None -> (
              match (Binary_heap.pop h, !model) with
              | None, [] -> true
              | Some (p, v), (mp, mv) :: rest ->
                  model := rest;
                  p = mp && v = mv
              | _ -> false))
        ops
      && (* Drain what remains and compare the tails too. *)
      List.for_all
        (fun (mp, mv) ->
          match Binary_heap.pop h with
          | Some (p, v) -> p = mp && v = mv
          | None -> false)
        !model
      && Binary_heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Binary_heap.create ~dummy:0 () in
  List.iter (fun v -> Binary_heap.push h ~priority:5 v) [ 1; 2; 3; 4 ];
  let popped = List.init 4 (fun _ -> snd (Option.get (Binary_heap.pop h))) in
  check Alcotest.(list int) "equal priorities are FIFO" [ 1; 2; 3; 4 ] popped

let test_heap_size_clear () =
  let h = Binary_heap.create ~capacity:2 ~dummy:0 () in
  for i = 1 to 100 do
    Binary_heap.push h ~priority:i i
  done;
  check Alcotest.int "size" 100 (Binary_heap.size h);
  check Alcotest.(option int) "peek" (Some 1) (Binary_heap.peek_priority h);
  Binary_heap.clear h;
  check Alcotest.bool "empty after clear" true (Binary_heap.is_empty h)

let test_heap_nonalloc_accessors () =
  let h = Binary_heap.create ~dummy:0 () in
  Alcotest.check_raises "min_priority empty"
    (Invalid_argument "Binary_heap.min_priority: empty heap") (fun () ->
      ignore (Binary_heap.min_priority h));
  Alcotest.check_raises "pop_min_exn empty"
    (Invalid_argument "Binary_heap.pop_min_exn: empty heap") (fun () ->
      ignore (Binary_heap.pop_min_exn h));
  Binary_heap.push h ~priority:9 90;
  Binary_heap.push h ~priority:3 30;
  check Alcotest.int "min_priority" 3 (Binary_heap.min_priority h);
  check Alcotest.int "pop_min_exn" 30 (Binary_heap.pop_min_exn h);
  check Alcotest.int "next min" 9 (Binary_heap.min_priority h);
  check Alcotest.int "next pop" 90 (Binary_heap.pop_min_exn h);
  check Alcotest.bool "empty" true (Binary_heap.is_empty h)

(* --- bitset -------------------------------------------------------------- *)

let bitset_membership =
  qtest "bitset: add implies mem, count matches"
    QCheck2.Gen.(list_size (int_range 0 100) (int_range 0 199))
    (fun elems ->
      let b = Bitset.create 200 in
      List.iter (fun e -> ignore (Bitset.add b e)) elems;
      let distinct = List.sort_uniq compare elems in
      List.for_all (fun e -> Bitset.mem b e) distinct
      && Bitset.count b = List.length distinct
      && Bitset.to_list b = distinct)

let test_bitset_add_reports_new () =
  let b = Bitset.create 10 in
  check Alcotest.bool "first add" true (Bitset.add b 3);
  check Alcotest.bool "second add" false (Bitset.add b 3);
  check Alcotest.int "count once" 1 (Bitset.count b)

let test_bitset_bounds () =
  let b = Bitset.create 4 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.add b 4))

(* --- stats --------------------------------------------------------------- *)

let test_summary_against_naive () =
  let values = [ 4.0; 8.0; 15.0; 16.0; 23.0; 42.0 ] in
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) values;
  let n = float_of_int (List.length values) in
  let mean = List.fold_left ( +. ) 0.0 values /. n in
  check (Alcotest.float 1e-9) "mean" mean (Stats.Summary.mean s);
  check (Alcotest.float 1e-9) "min" 4.0 (Stats.Summary.min s);
  check (Alcotest.float 1e-9) "max" 42.0 (Stats.Summary.max s);
  let var =
    List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 values
    /. (n -. 1.0)
  in
  check (Alcotest.float 1e-9) "stddev" (sqrt var) (Stats.Summary.stddev s)

let summary_merge =
  qtest "summary: merge equals bulk"
    QCheck2.Gen.(pair (list_size (int_range 1 50) (float_bound_exclusive 100.0))
                   (list_size (int_range 1 50) (float_bound_exclusive 100.0)))
    (fun (xs, ys) ->
      let a = Stats.Summary.create () and b = Stats.Summary.create () in
      List.iter (Stats.Summary.add a) xs;
      List.iter (Stats.Summary.add b) ys;
      let merged = Stats.Summary.merge a b in
      let all = Stats.Summary.create () in
      List.iter (Stats.Summary.add all) (xs @ ys);
      abs_float (Stats.Summary.mean merged -. Stats.Summary.mean all) < 1e-6
      && Stats.Summary.count merged = Stats.Summary.count all)

let test_histogram_percentiles () =
  let h = Stats.Histogram.create () in
  for i = 1 to 1000 do
    Stats.Histogram.add h (float_of_int i /. 1000.0)
  done;
  let p50 = Stats.Histogram.percentile h 0.5 in
  check Alcotest.bool "p50 near 0.5" (p50 > 0.45 && p50 < 0.55) true;
  let p99 = Stats.Histogram.percentile h 0.99 in
  check Alcotest.bool "p99 near 0.99" (p99 > 0.9 && p99 < 1.1) true;
  check Alcotest.int "count" 1000 (Stats.Histogram.count h)

(* Regression: percentile used to return the bucket's lower bound, which
   biases every estimate low by up to a full bucket (~2%). With the
   geometric midpoint, a point mass must come back within the half-bucket
   relative error sqrt(1.02) - 1 (~1%) on either side. *)
let test_histogram_midpoint () =
  let rel_err = sqrt 1.02 -. 1.0 in
  List.iter
    (fun v ->
      let h = Stats.Histogram.create () in
      for _ = 1 to 100 do
        Stats.Histogram.add h v
      done;
      List.iter
        (fun p ->
          let est = Stats.Histogram.percentile h p in
          check Alcotest.bool
            (Printf.sprintf "p%.0f of point mass %g within half bucket"
               (100.0 *. p) v)
            true
            (abs_float (est -. v) /. v <= rel_err +. 1e-9))
        [ 0.01; 0.5; 0.99 ])
    [ 1e-6; 0.004; 0.25; 3.0 ];
  (* Uniform 1..1000 ms: the old lower-bound estimate was consistently
     below the true quantile; the midpoint must straddle it. *)
  let h = Stats.Histogram.create () in
  for i = 1 to 1000 do
    Stats.Histogram.add h (float_of_int i /. 1000.0)
  done;
  let p50 = Stats.Histogram.percentile h 0.5 in
  check Alcotest.bool "uniform p50 within 2%" true
    (abs_float (p50 -. 0.5) /. 0.5 <= 0.02)

let test_series_buckets () =
  let s = Stats.Series.create ~bucket_width:0.5 () in
  Stats.Series.add s ~time:0.1 10.0;
  Stats.Series.add s ~time:0.4 5.0;
  Stats.Series.add s ~time:1.2 7.0;
  let buckets = Stats.Series.buckets s in
  check Alcotest.int "three buckets" 3 (Array.length buckets);
  check (Alcotest.float 1e-9) "bucket 0 total" 15.0 (snd buckets.(0));
  check (Alcotest.float 1e-9) "bucket 1 empty" 0.0 (snd buckets.(1));
  check (Alcotest.float 1e-9) "bucket 2 total" 7.0 (snd buckets.(2));
  let rates = Stats.Series.rates s in
  check (Alcotest.float 1e-9) "rate is per second" 30.0 (snd rates.(0))

(* --- bytes util ----------------------------------------------------------- *)

let hex_roundtrip =
  qtest "hex: roundtrip" QCheck2.Gen.string (fun s ->
      Bytes_util.of_hex (Bytes_util.hex s) = s)

let u64_roundtrip =
  qtest "u64: roundtrip" QCheck2.Gen.int64 (fun v ->
      Bytes_util.get_u64be (Bytes_util.u64_string v) 0 = v)

let test_xor () =
  check Alcotest.string "xor self is zero"
    (String.make 4 '\x00')
    (Bytes_util.xor "abcd" "abcd");
  check Alcotest.string "xor known" "\x03\x01" (Bytes_util.xor "\x01\x02" "\x02\x03")

let suite =
  ( "common",
    [
      Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
      Alcotest.test_case "rng split" `Quick test_rng_split_independent;
      rng_bounds;
      rng_float_bounds;
      Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutes;
      heap_sorted;
      heap_model;
      Alcotest.test_case "heap fifo ties" `Quick test_heap_fifo_ties;
      Alcotest.test_case "heap size/clear" `Quick test_heap_size_clear;
      Alcotest.test_case "heap non-allocating accessors" `Quick
        test_heap_nonalloc_accessors;
      bitset_membership;
      Alcotest.test_case "bitset add reports new" `Quick test_bitset_add_reports_new;
      Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
      Alcotest.test_case "summary vs naive" `Quick test_summary_against_naive;
      summary_merge;
      Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
      Alcotest.test_case "histogram midpoint" `Quick test_histogram_midpoint;
      Alcotest.test_case "series buckets" `Quick test_series_buckets;
      hex_roundtrip;
      u64_roundtrip;
      Alcotest.test_case "xor" `Quick test_xor;
    ] )
