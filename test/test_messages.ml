(* Message vocabulary tests: the §7.2 size model, batch signing. *)

module Msg = Rcc_messages.Msg
module Batch = Rcc_messages.Batch

let check = Alcotest.check

let rng = Rcc_common.Rng.create 17
let secret, public = Rcc_crypto.Signature.keygen rng
let other_secret, _ = Rcc_crypto.Signature.keygen rng

let batch_of ntxns =
  Batch.create ~id:1 ~client:0
    ~txns:(Array.init ntxns (fun i -> Rcc_workload.Txn.{ key = i; op = Write i }))
    ~secret

let test_paper_sizes () =
  let b100 = batch_of 100 in
  check Alcotest.int "pre-prepare @ batch 100" 5400
    (Msg.size (Msg.Pre_prepare { instance = 0; view = 0; seq = 0; batch = b100 }));
  check Alcotest.int "order-request @ batch 100" 5400
    (Msg.size
       (Msg.Order_request { instance = 0; view = 0; seq = 0; batch = b100; history = "" }));
  check Alcotest.int "response @ batch 100" 1748
    (Msg.size
       (Msg.Response
          {
            client = 0;
            batch_id = 0;
            round = 0;
            result_digest = "";
            txn_count = 100;
            speculative = false;
            history = "";
          }));
  check Alcotest.int "prepare" 250
    (Msg.size (Msg.Prepare { instance = 0; view = 0; seq = 0; digest = "" }));
  check Alcotest.int "commit" 250
    (Msg.size (Msg.Commit { instance = 0; view = 0; seq = 0; digest = "" }));
  check Alcotest.int "view-change" 250
    (Msg.size
       (Msg.View_change
          { instance = 0; new_view = 1; blamed = 0; round = 0; last_exec = 0;
            signature = "" }));
  (* A view-sync grows with its certificate: 80 B per vote over the header. *)
  check Alcotest.int "view-sync" (250 + (2 * 80))
    (Msg.size
       (Msg.View_sync
          {
            instance = 0;
            view = 1;
            primary = 3;
            kmal = [];
            cert =
              [
                { Msg.bv_accuser = 1; bv_round = 0; bv_sig = "" };
                { Msg.bv_accuser = 2; bv_round = 0; bv_sig = "" };
              ];
          }))

let test_contract_size_ballpark () =
  (* Figure 12 setup: z=11 entries, batch 100, 2f+1 = 21 certifiers -> the
     paper reports ~175 KB. *)
  let entries =
    List.init 11 (fun i ->
        {
          Msg.ce_instance = i;
          ce_round = 0;
          ce_batch = batch_of 100;
          ce_cert_replicas = List.init 21 (fun r -> r);
        })
  in
  let size = Msg.size (Msg.Contract { round = 0; entries }) in
  check Alcotest.bool "contract ~175KB" true (size > 150_000 && size < 200_000)

let test_hs_proposal_size () =
  let with_batch =
    Msg.size (Msg.Hs_proposal { view = 0; phase = 0; seq = 0; batch = Some (batch_of 100); digest = "" })
  in
  let without =
    Msg.size (Msg.Hs_proposal { view = 0; phase = 1; seq = 0; batch = None; digest = "" })
  in
  check Alcotest.int "phase 0 carries batch" 5400 with_batch;
  check Alcotest.int "later phases small" 250 without

let test_batch_verify () =
  let b = batch_of 10 in
  check Alcotest.bool "valid batch verifies" true (Batch.verify b ~public);
  let forged = { b with Batch.txns = [| Rcc_workload.Txn.{ key = 9; op = Read } |] } in
  check Alcotest.bool "tampered txns rejected" false (Batch.verify forged ~public);
  let resigned =
    Batch.create ~id:1 ~client:0 ~txns:b.Batch.txns ~secret:other_secret
  in
  check Alcotest.bool "wrong signer rejected" false (Batch.verify resigned ~public)

let test_null_batch () =
  let null = Batch.null ~round:7 in
  check Alcotest.bool "is_null" true (Batch.is_null null);
  check Alcotest.bool "regular batch not null" false (Batch.is_null (batch_of 1));
  check Alcotest.int "no txns" 0 (Array.length null.Batch.txns);
  let null2 = Batch.null ~round:8 in
  check Alcotest.bool "distinct rounds, distinct digests" false
    (String.equal null.Batch.digest null2.Batch.digest)

let test_instance_of_and_kind () =
  check Alcotest.(option int) "prepare instance" (Some 3)
    (Msg.instance_of (Msg.Prepare { instance = 3; view = 0; seq = 0; digest = "" }));
  check Alcotest.(option int) "hs proposal no instance" None
    (Msg.instance_of (Msg.Hs_proposal { view = 0; phase = 0; seq = 0; batch = None; digest = "" }));
  check Alcotest.string "kind" "pre_prepare"
    (Msg.kind (Msg.Pre_prepare { instance = 0; view = 0; seq = 0; batch = batch_of 1 }));
  (* pp is total over the variant *)
  let msgs =
    [
      Msg.Prepare { instance = 0; view = 1; seq = 2; digest = "" };
      Msg.Response
        {
          client = 1;
          batch_id = 2;
          round = 0;
          result_digest = "";
          txn_count = 1;
          speculative = true;
          history = "";
        };
      Msg.Contract_request { round = 0; instance = 0 };
    ]
  in
  List.iter (fun m -> check Alcotest.bool "pp total" true
                (String.length (Format.asprintf "%a" Msg.pp m) > 0)) msgs

(* Wire sizes are monotone in the batch size for batch-carrying messages
   and independent of it for digest-only ones. *)
let size_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"msg: size monotone in batch size"
       QCheck2.Gen.(pair (int_range 1 400) (int_range 1 400))
       (fun (a, b) ->
         let small = min a b and large = max a b in
         let pp n =
           Msg.size (Msg.Pre_prepare { instance = 0; view = 0; seq = 0; batch = batch_of n })
         in
         let prep _n =
           Msg.size (Msg.Prepare { instance = 0; view = 0; seq = 0; digest = "" })
         in
         pp small <= pp large && prep small = prep large))

let test_batch_digest_matches_txns () =
  let b = batch_of 5 in
  check Alcotest.string "digest = digest_of_txns"
    (Rcc_common.Bytes_util.hex (Batch.digest_of_txns b.Batch.txns))
    (Rcc_common.Bytes_util.hex b.Batch.digest)

let suite =
  ( "messages",
    [
      Alcotest.test_case "paper sizes (§7.2)" `Quick test_paper_sizes;
      Alcotest.test_case "contract size" `Quick test_contract_size_ballpark;
      Alcotest.test_case "hs proposal size" `Quick test_hs_proposal_size;
      Alcotest.test_case "batch verify" `Quick test_batch_verify;
      Alcotest.test_case "null batch" `Quick test_null_batch;
      Alcotest.test_case "instance_of/kind/pp" `Quick test_instance_of_and_kind;
      size_monotone;
      Alcotest.test_case "batch digest" `Quick test_batch_digest_matches_txns;
    ] )
