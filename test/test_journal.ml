(* Journal tests: the deterministic fault-injecting disk, group-commit
   crash semantics, snapshot slot discipline, and restart-from-disk
   recovery — a QCheck property that journal replay reproduces in-memory
   execution at random crash points, and a torn/corrupt/lost sweep
   proving every injected fault truncates the replay to a valid prefix,
   never silently diverging from the clean history. *)

module Engine = Rcc_sim.Engine
module Costs = Rcc_sim.Costs
module Journal = Rcc_journal.Journal
module Sim_disk = Rcc_journal.Sim_disk
module Batch = Rcc_messages.Batch
module Ledger = Rcc_storage.Ledger
module Kv = Rcc_storage.Kv_store
module Txn_table = Rcc_storage.Txn_table
module Snapshot = Rcc_storage.Snapshot
module Acceptance = Rcc_replica.Acceptance
module Txn = Rcc_workload.Txn
module Rng = Rcc_common.Rng
module Keychain = Rcc_crypto.Keychain

let check = Alcotest.check

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let primaries = [ 0; 1 ]
let keychain = lazy (Keychain.create ~seed:42 ~n:4 ~clients:8)

(* Batches carry a write of the globally unique id, so no two generated
   batches share a digest and replay's duplicate-reply suppression never
   fires on distinct work. *)
let mk_batch ~id ~client ~rng =
  let extra = Rng.int rng 3 in
  let txns =
    Array.init (1 + extra) (fun i ->
        if i = 0 then { Txn.key = Rng.int rng 100; op = Txn.Write id }
        else
          {
            Txn.key = Rng.int rng 100;
            op =
              (if Rng.bool rng then Txn.Read else Txn.Write (Rng.int rng 1_000));
          })
  in
  Batch.create ~id ~client ~txns
    ~secret:(Keychain.client_secret (Lazy.force keychain) client)

(* One round = one acceptance per instance, in replay order. *)
let mk_round ~next_id ~rng ?(speculative = false) round =
  Array.of_list
    (List.map
       (fun instance ->
         let id = !next_id in
         incr next_id;
         {
           Acceptance.instance;
           round;
           batch = mk_batch ~id ~client:(Rng.int rng 8) ~rng;
           cert = [ 0; 1; 2 ];
           speculative;
           history = "";
         })
       primaries)

let mk_rounds ~seed ?(speculative = false) n =
  let rng = Rng.create seed in
  let next_id = ref (1 + (1_000_000 * seed)) in
  List.init n (fun round -> (round, mk_round ~next_id ~rng ~speculative round))

let fresh_state () =
  (Ledger.create ~primaries, Kv.create (), Txn_table.create ())

let recover_fresh ?(engine = Engine.create ()) disk =
  let ledger, store, txn_table = fresh_state () in
  (* Mirror the builder: the live store has undo-journaling on, which
     rollback replay depends on. *)
  Kv.enable_journal store;
  let rv =
    Journal.recover ~engine ~self:0 ~disk ~ledger ~store ~txn_table ~primaries
      ~materialize:true ()
  in
  (rv, ledger, store, txn_table)

(* The in-memory oracle: apply the batches directly, in (round, slot)
   order — what live execution would have produced. *)
let oracle_store rounds =
  let store = Kv.create () in
  List.iter
    (fun (_, slots) ->
      Array.iter
        (fun (a : Acceptance.t) ->
          Array.iter
            (fun txn -> ignore (Txn.apply store txn))
            a.Acceptance.batch.Batch.txns)
        slots)
    rounds;
  store

(* Log rounds through a journal writer and let the engine drain every
   scheduled flush; returns the journal so callers can keep appending. *)
let log_and_flush ~engine ~disk rounds =
  let j =
    Journal.attach ~engine ~costs:Costs.default ~disk ~self:0 ()
  in
  List.iter
    (fun (round, slots) -> Journal.log_round j ~round ~primaries slots)
    rounds;
  Engine.run engine ~until:(Engine.now engine + Engine.ms 100);
  j

(* --- Sim_disk ----------------------------------------------------------- *)

let test_disk_determinism () =
  let fill disk =
    for i = 0 to 19 do
      Sim_disk.append disk [ Printf.sprintf "record-%d" i; "tail" ]
    done
  in
  let a = Sim_disk.create ~seed:7 and b = Sim_disk.create ~seed:7 in
  Sim_disk.set_faults a (Sim_disk.uniform_faults 0.3);
  Sim_disk.set_faults b (Sim_disk.uniform_faults 0.3);
  fill a;
  fill b;
  check Alcotest.bool "faults actually injected" true
    (Sim_disk.faults_injected a > 0);
  check Alcotest.int "same seed, same fault count" (Sim_disk.faults_injected a)
    (Sim_disk.faults_injected b);
  check
    Alcotest.(list string)
    "same seed, same fault kinds" (Sim_disk.fault_log a) (Sim_disk.fault_log b);
  check Alcotest.string "same seed, same stored bytes" (Sim_disk.journal a)
    (Sim_disk.journal b);
  let clean = Sim_disk.create ~seed:7 in
  fill clean;
  check Alcotest.int "fault-free disk stores everything"
    (String.length (String.concat ""
       (List.concat
          (List.init 20 (fun i -> [ Printf.sprintf "record-%d" i; "tail" ])))))
    (Sim_disk.journal_bytes clean);
  check Alcotest.int "no spurious faults" 0 (Sim_disk.faults_injected clean)

let test_disk_snapshot_slots () =
  let disk = Sim_disk.create ~seed:3 in
  Sim_disk.write_snapshot disk ~seq:128 "AAAA";
  Sim_disk.write_snapshot disk ~seq:256 "BBBB";
  check
    Alcotest.(list (pair int string))
    "two slots, newest first"
    [ (256, "BBBB"); (128, "AAAA") ]
    (Sim_disk.snapshots disk);
  (* The third write recycles the OLDER slot; the newest survives. *)
  Sim_disk.write_snapshot disk ~seq:384 "CCCC";
  check
    Alcotest.(list (pair int string))
    "older slot recycled"
    [ (384, "CCCC"); (256, "BBBB") ]
    (Sim_disk.snapshots disk);
  (* A lost write must never destroy the existing slots. *)
  Sim_disk.set_faults disk { Sim_disk.torn = 0.0; corrupt = 0.0; lost = 1.0 };
  Sim_disk.write_snapshot disk ~seq:512 "DDDD";
  check
    Alcotest.(list (pair int string))
    "lost snapshot write leaves slots intact"
    [ (384, "CCCC"); (256, "BBBB") ]
    (Sim_disk.snapshots disk)

(* --- group commit ------------------------------------------------------- *)

let test_group_commit_crash () =
  let engine = Engine.create () in
  let disk = Sim_disk.create ~seed:1 in
  let rounds = mk_rounds ~seed:5 2 in
  let j = Journal.attach ~engine ~costs:Costs.default ~disk ~self:0 () in
  List.iter
    (fun (round, slots) -> Journal.log_round j ~round ~primaries slots)
    rounds;
  (* Buffered, not yet durable: nothing on disk until the flush fires. *)
  check Alcotest.int "nothing durable before flush" 0
    (Sim_disk.journal_bytes disk);
  check Alcotest.int "no round durable yet" (-1) (Journal.durable_round j);
  Engine.run engine ~until:(Engine.ms 10);
  check Alcotest.bool "flush persisted the records" true
    (Sim_disk.journal_bytes disk > 0);
  check Alcotest.int "durable frontier advanced" 1 (Journal.durable_round j);
  check Alcotest.int "one group-commit flush" 1 (Journal.flushes j);
  (* Crash with a dirty buffer: the un-flushed round is gone. *)
  let bytes_before = Sim_disk.journal_bytes disk in
  let round, slots = (2, mk_round ~next_id:(ref 900) ~rng:(Rng.create 9) 2) in
  Journal.log_round j ~round ~primaries slots;
  Journal.halt j;
  Engine.run engine ~until:(Engine.ms 20);
  check Alcotest.int "crash drops the dirty buffer" bytes_before
    (Sim_disk.journal_bytes disk);
  let rv, ledger, _, _ = recover_fresh disk in
  check Alcotest.int "recovery sees only the flushed prefix" 2
    rv.Journal.r_frontier;
  check Alcotest.int "ledger replayed to the durable frontier" 2
    (Ledger.next_round ledger)

(* --- recovery ----------------------------------------------------------- *)

let test_replay_matches_execution () =
  let engine = Engine.create () in
  let disk = Sim_disk.create ~seed:2 in
  let rounds = mk_rounds ~seed:11 20 in
  let j = log_and_flush ~engine ~disk rounds in
  check Alcotest.bool "snapshotless run flushed" true (Journal.flushes j > 0);
  let rv, ledger, store, txn_table = recover_fresh disk in
  check Alcotest.int "frontier = rounds logged" 20 rv.Journal.r_frontier;
  check Alcotest.int "no snapshot involved" 0 rv.Journal.r_snapshot_seq;
  check Alcotest.int "every round replayed" 20 rv.Journal.r_replayed_rounds;
  check Alcotest.int "ledger rebuilt" 20 (Ledger.next_round ledger);
  check Alcotest.bool "chain validates" true
    (Result.is_ok (Ledger.validate ledger));
  check Alcotest.string "KV state = direct in-memory execution"
    (Kv.state_digest (oracle_store rounds))
    (Kv.state_digest store);
  check Alcotest.int "txn table covers every round" 20
    (Txn_table.rounds txn_table);
  (* Determinism: recovering the same disk twice is byte-identical. *)
  let _, ledger2, store2, _ = recover_fresh disk in
  check Alcotest.string "second recovery, same KV" (Kv.state_digest store)
    (Kv.state_digest store2);
  check Alcotest.string "second recovery, same head" (Ledger.head_hash ledger)
    (Ledger.head_hash ledger2)

let test_replay_rollback () =
  let engine = Engine.create () in
  let disk = Sim_disk.create ~seed:4 in
  let keep = mk_rounds ~seed:21 3 in
  let doomed =
    List.map (fun (r, s) -> (r + 3, s)) (mk_rounds ~seed:22 2)
  in
  let redone =
    List.map (fun (r, s) -> (r + 3, s)) (mk_rounds ~seed:23 2)
  in
  let j = Journal.attach ~engine ~costs:Costs.default ~disk ~self:0 () in
  List.iter
    (fun (round, slots) -> Journal.log_round j ~round ~primaries slots)
    (keep @ doomed);
  (* A view change unwinds the speculative tail, then different batches
     land at the same rounds — exactly what the rollback record exists
     to make durable. *)
  Journal.log_rollback j ~frontier:3;
  List.iter
    (fun (round, slots) -> Journal.log_round j ~round ~primaries slots)
    redone;
  Engine.run engine ~until:(Engine.ms 100);
  let rv, ledger, store, _ = recover_fresh disk in
  check Alcotest.int "frontier past the re-done rounds" 5 rv.Journal.r_frontier;
  check Alcotest.bool "chain validates" true
    (Result.is_ok (Ledger.validate ledger));
  check Alcotest.string "rollback undone: state = keep + redone only"
    (Kv.state_digest (oracle_store (keep @ redone)))
    (Kv.state_digest store)

let test_replay_stops_at_unproven_speculation () =
  let engine = Engine.create () in
  let disk = Sim_disk.create ~seed:6 in
  let rounds = mk_rounds ~seed:31 ~speculative:true 10 in
  let j = Journal.attach ~engine ~costs:Costs.default ~disk ~self:0 () in
  List.iter
    (fun (round, slots) -> Journal.log_round j ~round ~primaries slots)
    rounds;
  (* The stable floor proves rounds < 8; speculative rounds at or past it
     may have been rolled back in the lost suffix, so replay must not
     trust them. *)
  Journal.log_stable j ~floor:8;
  Engine.run engine ~until:(Engine.ms 100);
  let rv, _, store, _ = recover_fresh disk in
  check Alcotest.int "replay stops at the attest floor" 8 rv.Journal.r_frontier;
  check Alcotest.string "state covers exactly the proven prefix"
    (Kv.state_digest
       (oracle_store (List.filter (fun (r, _) -> r < 8) rounds)))
    (Kv.state_digest store)

let test_snapshot_plus_suffix () =
  let engine = Engine.create () in
  let disk = Sim_disk.create ~seed:8 in
  let rounds = mk_rounds ~seed:41 10 in
  let j = log_and_flush ~engine ~disk rounds in
  (* Build the checkpoint the way the builder does: from the recovered
     (= live) state at the boundary. *)
  let _, ledger, store, _ = recover_fresh disk in
  let snap =
    (* Checkpoint state at the boundary: KV as of round 8, not the
       frontier — the builder snapshots only when execution has settled
       at the boundary. *)
    {
      Snapshot.seq = 8;
      blocks = Ledger.prefix ledger ~upto:8;
      kv =
        Some
          (Kv.entries
             (oracle_store (List.filter (fun (r, _) -> r < 8) rounds)));
      replied = [];
    }
  in
  Journal.write_snapshot j ~seq:8 snap;
  Engine.run engine ~until:(Engine.now engine + Engine.ms 100);
  check Alcotest.int "snapshot written" 1 (Journal.snapshots_written j);
  let rv, ledger2, store2, _ = recover_fresh disk in
  check Alcotest.int "recovery starts from the snapshot" 8
    rv.Journal.r_snapshot_seq;
  check Alcotest.int "only the suffix replayed" 2 rv.Journal.r_replayed_rounds;
  check Alcotest.int "frontier unchanged" 10 rv.Journal.r_frontier;
  check Alcotest.string "snapshot + suffix = full replay"
    (Kv.state_digest store)
    (Kv.state_digest store2);
  check Alcotest.string "same chain head" (Ledger.head_hash ledger)
    (Ledger.head_hash ledger2);
  (* A corrupted newer snapshot must fall back to the older good slot,
     never poison recovery. *)
  Sim_disk.set_faults disk { Sim_disk.torn = 0.0; corrupt = 1.0; lost = 0.0 };
  let snap9 = { snap with Snapshot.seq = 9; blocks = Ledger.prefix ledger ~upto:9 } in
  Journal.write_snapshot j ~seq:9 snap9;
  Engine.run engine ~until:(Engine.now engine + Engine.ms 100);
  Sim_disk.set_faults disk Sim_disk.no_faults;
  let rv3, _, store3, _ = recover_fresh disk in
  check Alcotest.int "corrupt slot skipped, older one used" 8
    rv3.Journal.r_snapshot_seq;
  check Alcotest.string "state still correct" (Kv.state_digest store)
    (Kv.state_digest store3)

(* --- fault sweep: detected or truncated, never divergent ---------------- *)

let test_fault_sweep () =
  let rounds = mk_rounds ~seed:51 30 in
  (* Clean reference: what an honest disk recovers to. *)
  let clean_disk = Sim_disk.create ~seed:100 in
  ignore (log_and_flush ~engine:(Engine.create ()) ~disk:clean_disk rounds);
  let _, clean_ledger, _, _ = recover_fresh clean_disk in
  let faults_seen = ref 0 and truncations = ref 0 in
  List.iter
    (fun (seed, p) ->
      let disk = Sim_disk.create ~seed in
      Sim_disk.set_faults disk (Sim_disk.uniform_faults p);
      ignore (log_and_flush ~engine:(Engine.create ()) ~disk rounds);
      faults_seen := !faults_seen + Sim_disk.faults_injected disk;
      let rv, ledger, store, _ = recover_fresh disk in
      let f = rv.Journal.r_frontier in
      if f < 30 then incr truncations;
      check Alcotest.bool
        (Printf.sprintf "seed %d p=%.2f: frontier bounded" seed p)
        true (f <= 30);
      (* The recovered prefix must be byte-identical to the clean
         history — a lying disk loses data, it never rewrites it. *)
      check Alcotest.bool
        (Printf.sprintf "seed %d p=%.2f: prefix matches clean history" seed p)
        true
        (Ledger.prefix ledger ~upto:f = Ledger.prefix clean_ledger ~upto:f);
      check Alcotest.string
        (Printf.sprintf "seed %d p=%.2f: state matches clean prefix" seed p)
        (Kv.state_digest
           (oracle_store (List.filter (fun (r, _) -> r < f) rounds)))
        (Kv.state_digest store))
    [ (201, 0.05); (202, 0.1); (203, 0.2); (204, 0.3); (205, 0.5) ];
  check Alcotest.bool "the sweep exercised injected faults" true
    (!faults_seen > 0);
  check Alcotest.bool "at least one recovery was truncated" true
    (!truncations > 0)

(* --- QCheck: random crash points ---------------------------------------- *)

let prop_crash_point =
  qtest ~count:40 "replay == execution at random crash points"
    QCheck2.Gen.(
      triple (int_range 0 1_000) (int_range 1 20) (int_range 0 6))
    (fun (seed, durable_n, lost_n) ->
      let engine = Engine.create () in
      let disk = Sim_disk.create ~seed:(seed + 1) in
      let durable = mk_rounds ~seed durable_n in
      let j = log_and_flush ~engine ~disk durable in
      (* More work arrives, then the power goes out before the group
         commit: everything past the flushed prefix is lost. *)
      let lost =
        List.map (fun (r, s) -> (r + durable_n, s)) (mk_rounds ~seed:(seed + 7) lost_n)
      in
      List.iter
        (fun (round, slots) -> Journal.log_round j ~round ~primaries slots)
        lost;
      Journal.halt j;
      let rv, ledger, store, _ = recover_fresh disk in
      rv.Journal.r_frontier = durable_n
      && Ledger.next_round ledger = durable_n
      && Result.is_ok (Ledger.validate ledger)
      && String.equal
           (Kv.state_digest (oracle_store durable))
           (Kv.state_digest store))

let suite =
  ( "journal",
    [
      Alcotest.test_case "sim-disk determinism" `Quick test_disk_determinism;
      Alcotest.test_case "sim-disk snapshot slots" `Quick
        test_disk_snapshot_slots;
      Alcotest.test_case "group commit crash" `Quick test_group_commit_crash;
      Alcotest.test_case "replay matches execution" `Quick
        test_replay_matches_execution;
      Alcotest.test_case "rollback record" `Quick test_replay_rollback;
      Alcotest.test_case "unproven speculation truncates" `Quick
        test_replay_stops_at_unproven_speculation;
      Alcotest.test_case "snapshot + suffix" `Quick test_snapshot_plus_suffix;
      Alcotest.test_case "fault sweep never diverges" `Quick test_fault_sweep;
      prop_crash_point;
    ] )
