(* Protocol-level test harness: n instances of one pluggable protocol wired
   directly to each other over the simulation engine (fixed small latency,
   no pipeline costs). Lets unit tests drive PBFT / Zyzzyva / HotStuff
   message flows without building a whole cluster. *)

module Engine = Rcc_sim.Engine
module Msg = Rcc_messages.Msg
module Batch = Rcc_messages.Batch
module Env = Rcc_replica.Instance_env

let latency = Engine.us 50

module Make (P : Rcc_replica.Instance_intf.S) = struct
  type node = {
    inst : P.t;
    accepted : (int, Rcc_replica.Acceptance.t) Hashtbl.t;
    mutable failures : (int * int) list;  (* (round, blamed) *)
    mutable responses : Msg.t list;  (* replica -> client messages *)
    mutable rollbacks : int list;  (* frontiers, most recent first *)
  }

  type t = {
    engine : Engine.t;
    nodes : node array;
    mutable dead : bool array;
    tracer : Rcc_trace.Recorder.t option;
  }

  let create ?(timeout = Engine.ms 200) ?(byz = fun (_ : int) -> Rcc_replica.Byz.honest)
      ?(unified = false) ?(checkpoint_interval = 64) ?(trace = false) ~n () =
    let f = (n - 1) / 3 in
    let engine = Engine.create () in
    let tracer =
      if trace then begin
        let r = Rcc_trace.Recorder.create () in
        Engine.set_tracer engine r;
        Some r
      end
      else None
    in
    let dead = Array.make n false in
    let nodes : node option array = Array.make n None in
    let node_of i = match nodes.(i) with Some node -> node | None -> assert false in
    let deliver ~src ~dst msg =
      if (not dead.(src)) && not dead.(dst) then
        Engine.schedule_after engine latency (fun () ->
            if not dead.(dst) then P.handle (node_of dst).inst ~src msg)
    in
    for self = 0 to n - 1 do
      let env =
        {
          Env.n;
          f;
          z = 1;
          instance = 0;
          self;
          engine;
          costs = Rcc_sim.Costs.default;
          timeout;
          checkpoint_interval;
          on_stable = (fun ~seq:_ -> ());
          send = (fun ?sign:_ ~dst msg -> deliver ~src:self ~dst msg);
          broadcast =
            (fun ?sign:_ ?(exclude = fun _ -> false) msg ->
              for dst = 0 to n - 1 do
                if dst <> self && not (exclude dst) then deliver ~src:self ~dst msg
              done);
          respond =
            (fun _client msg ->
              let node = node_of self in
              node.responses <- msg :: node.responses);
          accept =
            (fun acceptance ->
              let node = node_of self in
              Hashtbl.replace node.accepted acceptance.Rcc_replica.Acceptance.round
                acceptance;
              (* The harness has no execute stage; accepting IS executing
                 here, so stamp the execution event the conformance
                 trace-order checks look for. *)
              if Engine.tracing engine then
                Engine.trace engine ~replica:self ~instance:0
                  (Rcc_trace.Event.Slot_exec
                     {
                       round = acceptance.Rcc_replica.Acceptance.round;
                       batch = acceptance.Rcc_replica.Acceptance.batch.Batch.id;
                       txns =
                         Array.length
                           acceptance.Rcc_replica.Acceptance.batch.Batch.txns;
                     }));
          report_failure =
            (fun ~round ~blamed ->
              let node = node_of self in
              node.failures <- (round, blamed) :: node.failures);
          rollback =
            (fun ~frontier ->
              let node = node_of self in
              node.rollbacks <- frontier :: node.rollbacks;
              (* Accepting is executing here (see [accept]), so a
                 rollback discards the speculative suffix the same way
                 the real execute stage unwinds its ledger. *)
              let doomed =
                Hashtbl.fold
                  (fun round _ acc ->
                    if round >= frontier then round :: acc else acc)
                  node.accepted []
              in
              List.iter (Hashtbl.remove node.accepted) doomed);
          sign_blame = (fun ~view:_ ~blamed:_ ~round:_ -> "");
          byz = Rcc_replica.Byz.copy (byz self);
          unified;
        }
      in
      nodes.(self) <-
        Some
          {
            inst = P.create (Env.instrument env);
            accepted = Hashtbl.create 64;
            failures = [];
            responses = [];
            rollbacks = [];
          }
    done;
    let t = { engine; nodes = Array.map Option.get nodes; dead; tracer } in
    Array.iter (fun node -> P.start node.inst) t.nodes;
    t

  let run t seconds = Engine.run t.engine ~until:(Engine.of_seconds seconds)
  let node t i = t.nodes.(i)
  let inst t i = t.nodes.(i).inst
  let kill t i = t.dead.(i) <- true

  let accepted_batch_id t ~replica ~round =
    match Hashtbl.find_opt t.nodes.(replica).accepted round with
    | Some a -> Some a.Rcc_replica.Acceptance.batch.Batch.id
    | None -> None

  let submit t ~replica batch = P.submit_batch t.nodes.(replica).inst batch

  let trace_events t =
    match t.tracer with
    | Some r -> Rcc_trace.Recorder.to_list r
    | None -> []
end

let rng = Rcc_common.Rng.create 2024
let client_secret, _client_public = Rcc_crypto.Signature.keygen rng

let make_batch ?(client = 0) ?(ntxns = 3) id =
  let txns =
    Array.init ntxns (fun i ->
        Rcc_workload.Txn.{ key = (id * 17) + i; op = Write ((id * 100) + i) })
  in
  Batch.create ~id ~client ~txns ~secret:client_secret
