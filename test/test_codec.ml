(* Wire codec tests: every constructor round-trips; corrupted and
   truncated inputs are rejected with errors, not exceptions. *)

module Msg = Rcc_messages.Msg
module Codec = Rcc_messages.Codec
module Batch = Rcc_messages.Batch

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let rng = Rcc_common.Rng.create 55
let secret, _ = Rcc_crypto.Signature.keygen rng

(* --- generators --------------------------------------------------------- *)

let gen_txn =
  QCheck2.Gen.(
    let* key = int_range 0 1_000_000 in
    let* write = bool in
    if write then
      let+ v = int_range 0 1_000_000 in
      Rcc_workload.Txn.{ key; op = Write v }
    else return Rcc_workload.Txn.{ key; op = Read })

let gen_batch =
  QCheck2.Gen.(
    let* id = int_range (-100) 1_000_000 in
    let* client = int_range (-1) 1_000 in
    let+ txns = array_size (int_range 0 8) gen_txn in
    Batch.{ (Batch.create ~id ~client:(max client 0) ~txns ~secret) with client })

let gen_digest = QCheck2.Gen.(map Rcc_crypto.Sha256.digest string)
let gen_small = QCheck2.Gen.int_range 0 10_000
let gen_ids = QCheck2.Gen.(list_size (int_range 0 10) (int_range 0 100))

let gen_msg =
  QCheck2.Gen.(
    oneof
      [
        (let* instance = gen_small and* batch = gen_batch in
         return (Msg.Client_request { instance; batch }));
        (let* instance = gen_small and* view = gen_small and* seq = gen_small
         and* batch = gen_batch in
         return (Msg.Pre_prepare { instance; view; seq; batch }));
        (let* instance = gen_small and* view = gen_small and* seq = gen_small
         and* digest = gen_digest in
         return (Msg.Prepare { instance; view; seq; digest }));
        (let* instance = gen_small and* view = gen_small and* seq = gen_small
         and* digest = gen_digest in
         return (Msg.Commit { instance; view; seq; digest }));
        (let* instance = gen_small and* seq = gen_small and* state_digest = gen_digest in
         return (Msg.Checkpoint { instance; seq; state_digest }));
        (let* instance = gen_small and* new_view = gen_small and* blamed = gen_small
         and* round = gen_small and* signature = gen_digest in
         return
           (Msg.View_change
              { instance; new_view; blamed; round; last_exec = round - 1; signature }));
        (let* instance = gen_small and* view = gen_small
         and* reproposals = list_size (int_range 0 3) (pair gen_small gen_batch) in
         return (Msg.New_view { instance; view; reproposals }));
        (let* instance = gen_small and* view = gen_small and* seq = gen_small
         and* batch = gen_batch and* history = gen_digest in
         return (Msg.Order_request { instance; view; seq; batch; history }));
        (let* cc_instance = gen_small and* cc_seq = gen_small
         and* cc_client = gen_small
         and* cc_digest = gen_digest and* cc_replicas = gen_ids in
         return
           (Msg.Commit_cert
              { cc_instance; cc_seq; cc_client; cc_digest; cc_replicas }));
        (let* instance = gen_small and* seq = gen_small and* client = gen_small in
         return (Msg.Local_commit { instance; seq; client }));
        (let* view = gen_small and* phase = int_range 0 3 and* seq = gen_small
         and* batch = option gen_batch and* digest = gen_digest in
         return (Msg.Hs_proposal { view; phase; seq; batch; digest }));
        (let* view = gen_small and* phase = int_range 0 9 and* seq = gen_small
         and* digest = gen_digest in
         return (Msg.Hs_vote { view; phase; seq; digest }));
        (let* client = gen_small and* batch_id = gen_small and* round = gen_small
         and* result_digest = gen_digest and* txn_count = int_range 0 800
         and* speculative = bool and* history = gen_digest in
         return
           (Msg.Response
              { client; batch_id; round; result_digest; txn_count; speculative; history }));
        (let* round = gen_small
         and* entries =
           list_size (int_range 0 3)
             (let* ce_instance = gen_small and* ce_round = gen_small
              and* ce_batch = gen_batch and* ce_cert_replicas = gen_ids in
              return (Msg.{ ce_instance; ce_round; ce_batch; ce_cert_replicas }))
         in
         return (Msg.Contract { round; entries }));
        (let* round = gen_small and* instance = gen_small in
         return (Msg.Contract_request { round; instance }));
        (let* client = gen_small and* instance = gen_small in
         return (Msg.Instance_change { client; instance }));
        (let* instance = gen_small and* view = gen_small and* primary = gen_small
         and* kmal = gen_ids
         and* cert =
           list_size (int_range 0 4)
             (let* bv_accuser = gen_small and* bv_round = gen_small
              and* bv_sig = gen_digest in
              return Msg.{ bv_accuser; bv_round; bv_sig })
         in
         return (Msg.View_sync { instance; view; primary; kmal; cert }));
        (let* sr_seq = gen_small and* fetch = bool in
         return (Msg.Snapshot_request { sr_seq; fetch }));
        (let* sp_seq = gen_small and* sp_head = gen_digest
         and* sp_kv = oneof [ return ""; gen_digest ]
         and* sp_attesters = gen_ids
         and* sp_payload = option string in
         return
           (Msg.Snapshot_reply { sp_seq; sp_head; sp_kv; sp_attesters; sp_payload }));
      ])

(* Structural equality is fine: messages are pure data. *)
let roundtrip =
  qtest ~count:500 "codec: decode . encode = id" gen_msg (fun msg ->
      match Codec.decode (Codec.encode msg) with
      | Ok msg' -> msg = msg'
      | Error _ -> false)

let truncation_rejected =
  qtest ~count:200 "codec: truncations rejected" gen_msg (fun msg ->
      let s = Codec.encode msg in
      let ok = ref true in
      (* Check a few prefixes including the empty one. *)
      List.iter
        (fun frac ->
          let len = String.length s * frac / 10 in
          if len < String.length s then
            match Codec.decode (String.sub s 0 len) with
            | Ok _ -> ok := false
            | Error _ -> ())
        [ 0; 3; 7; 9 ];
      !ok)

(* Fuzz: arbitrary bytes must decode to an error, never raise. *)
let fuzz_never_raises =
  qtest ~count:500 "codec: random bytes never raise" QCheck2.Gen.string
    (fun junk ->
      match Codec.decode junk with Ok _ | Error _ -> true)

(* Mutation fuzz: flip one byte of a valid encoding; decoding must either
   fail cleanly or produce some (possibly different) message — no
   exceptions, no crashes. *)
let mutation_never_raises =
  qtest ~count:300 "codec: single-byte mutations never raise"
    QCheck2.Gen.(pair gen_msg (pair small_nat small_nat))
    (fun (msg, (pos_seed, delta)) ->
      let s = Bytes.of_string (Codec.encode msg) in
      let pos = pos_seed mod Bytes.length s in
      Bytes.set s pos
        (Char.chr ((Char.code (Bytes.get s pos) + 1 + (delta mod 255)) land 0xff));
      match Codec.decode (Bytes.to_string s) with Ok _ | Error _ -> true)

let test_trailing_bytes_rejected () =
  let msg = Msg.Contract_request { round = 3; instance = 1 } in
  let s = Codec.encode msg ^ "xx" in
  check Alcotest.bool "trailing bytes" true (Result.is_error (Codec.decode s))

let test_unknown_tag_rejected () =
  check Alcotest.bool "unknown tag" true
    (Result.is_error (Codec.decode "\xff\x00\x00"));
  check Alcotest.bool "empty" true (Result.is_error (Codec.decode ""))

let test_batch_payload_survives () =
  let txns = Array.init 5 (fun i -> Rcc_workload.Txn.{ key = i; op = Write (i * i) }) in
  let batch = Batch.create ~id:7 ~client:3 ~txns ~secret in
  let msg = Msg.Pre_prepare { instance = 1; view = 2; seq = 3; batch } in
  match Codec.decode (Codec.encode msg) with
  | Ok (Msg.Pre_prepare { batch = b; _ }) ->
      check Alcotest.int "txn count" 5 (Array.length b.Batch.txns);
      check Alcotest.bool "txns equal" true
        (Array.for_all2 Rcc_workload.Txn.equal batch.Batch.txns b.Batch.txns);
      check Alcotest.string "digest survives" batch.Batch.digest b.Batch.digest;
      check Alcotest.string "signature survives" batch.Batch.signature b.Batch.signature
  | Ok _ | Error _ -> Alcotest.fail "wrong decode"

let test_encoded_size () =
  let msg = Msg.Local_commit { instance = 0; seq = 1; client = 2 } in
  check Alcotest.int "encoded_size matches" (String.length (Codec.encode msg))
    (Codec.encoded_size msg)

let suite =
  ( "codec",
    [
      roundtrip;
      truncation_rejected;
      fuzz_never_raises;
      mutation_never_raises;
      Alcotest.test_case "trailing bytes" `Quick test_trailing_bytes_rejected;
      Alcotest.test_case "unknown tag" `Quick test_unknown_tag_rejected;
      Alcotest.test_case "batch payload" `Quick test_batch_payload_survives;
      Alcotest.test_case "encoded_size" `Quick test_encoded_size;
    ] )
