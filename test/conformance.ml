(* The Instance_intf.S conformance suite.

   RCC treats each protocol as a black box satisfying R1-R4 (§3.3); the
   coordinator, liveness monitor and contract recovery rely only on the
   [Instance_intf.S] surface. This functor runs one contract suite over
   any instance so a new backend proves the behaviors the rest of the
   system assumes:

   - accepted rounds are visible through [accepted_batch] on every
     replica, matching what was reported upward (R1/R2: all replicas
     accept the same batch);
   - [adopt] is idempotent — a second adopt of a decided round cannot
     change it (R4: contract recovery never rewrites history);
   - [incomplete_rounds] lists unaccepted rounds oldest-first so the
     coordinator can null-fill and contracts can target the right gap
     (R3: every started round eventually terminates);
   - batches submitted mid-leader-transfer are held and flushed, not
     dropped (the liveness half of R3 under unified recovery). *)

module Batch = Rcc_messages.Batch

module Make
    (P : Rcc_replica.Instance_intf.S) (Info : sig
      val name : string
    end) =
struct
  module H = Harness.Make (P)

  let check = Alcotest.check

  let test_fresh_instance () =
    let t = H.create ~n:4 () in
    let inst = H.inst t 2 in
    check Alcotest.bool "no accepted batch before any accept" true
      (Option.is_none (P.accepted_batch inst ~round:0));
    check
      Alcotest.(list int)
      "no incomplete rounds before any activity" []
      (P.incomplete_rounds inst)

  let test_accept_visibility () =
    let t = H.create ~n:4 () in
    H.submit t ~replica:0 (Harness.make_batch 7);
    H.run t 0.05;
    for r = 0 to 3 do
      check
        Alcotest.(option int)
        (Printf.sprintf "replica %d reported the accept upward" r)
        (Some 7)
        (H.accepted_batch_id t ~replica:r ~round:0);
      (match P.accepted_batch (H.inst t r) ~round:0 with
      | Some (b, _) ->
          check Alcotest.int
            (Printf.sprintf "replica %d serves the batch for contracts" r)
            7 b.Batch.id
      | None ->
          Alcotest.fail "accepted_batch must be available after accept");
      check
        Alcotest.(list int)
        (Printf.sprintf "replica %d has no incomplete rounds" r)
        []
        (P.incomplete_rounds (H.inst t r))
    done

  let test_adopt_idempotence () =
    let t = H.create ~n:4 () in
    let inst = H.inst t 3 in
    let first = Harness.make_batch 41 and second = Harness.make_batch 42 in
    P.adopt inst ~round:0 first ~cert:[ 0; 1; 2 ];
    (match P.accepted_batch inst ~round:0 with
    | Some (b, _) -> check Alcotest.int "adopt decides the round" 41 b.Batch.id
    | None -> Alcotest.fail "adopt must make the round available");
    P.adopt inst ~round:0 second ~cert:[ 0; 1; 2 ];
    (* Two legal outcomes: quorum protocols keep the first decision (a
       conflicting adopt is simply ignored), while speculative protocols
       may surrender the round to the attested replacement — but then
       they MUST have signalled a rollback so the execute stage unwinds
       the first batch's effects. Silently rewriting is the fork bug. *)
    match P.accepted_batch inst ~round:0 with
    | Some (b, _) when b.Batch.id = 41 -> ()
    | Some (b, _) when b.Batch.id = 42 ->
        check
          Alcotest.(list int)
          "conflicting adopt must roll the round back before rewriting"
          [ 0 ] (H.node t 3).H.rollbacks
    | Some (b, _) ->
        Alcotest.failf "adopt produced an unrelated batch %d" b.Batch.id
    | None -> Alcotest.fail "round must stay decided"

  let test_incomplete_ordering () =
    let t = H.create ~n:4 () in
    let inst = H.inst t 0 in
    P.adopt inst ~round:3 (Harness.make_batch 13) ~cert:[ 0; 1; 2 ];
    let rounds = P.incomplete_rounds inst in
    check
      Alcotest.(list int)
      "incomplete rounds oldest first" (List.sort compare rounds) rounds;
    (* The holes below the adopted round must all be reported; in-order
       protocols may additionally report round 3 itself until the gap
       fills. *)
    check
      Alcotest.(list int)
      "holes below the adopted round" [ 0; 1; 2 ]
      (List.filter (fun r -> r < 3) rounds);
    check Alcotest.bool "nothing past the known frontier" true
      (List.for_all (fun r -> r <= 3) rounds)

  let test_held_batch_flush () =
    let t = H.create ~n:4 ~unified:true () in
    for r = 0 to 3 do
      P.set_primary (H.inst t r) 1 ~view:1
    done;
    (* Inside the takeover window: the new primary must hold the batch
       through its recovery grace period and flush it, not drop it. *)
    H.submit t ~replica:1 (Harness.make_batch 99);
    H.run t 0.3;
    let found = ref false in
    for round = 0 to 8 do
      if H.accepted_batch_id t ~replica:0 ~round = Some 99 then found := true
    done;
    check Alcotest.bool "batch submitted mid-transfer eventually accepted"
      true !found

  (* Every backend must leave the same structured footprint: a round is
     proposed, then accepted, then executed, at non-decreasing simulated
     times, on every replica. The events come from shared layers
     (Slot_log, Instance_env.instrument, the harness's execute stamp), so
     this pins the zero-per-protocol-code tracing contract. *)
  let test_trace_order () =
    let module E = Rcc_trace.Event in
    let t = H.create ~n:4 ~trace:true () in
    H.submit t ~replica:0 (Harness.make_batch 7);
    H.run t 0.05;
    let events = H.trace_events t in
    check Alcotest.bool "trace is non-empty" true (events <> []);
    let times = List.map (fun (e : E.t) -> e.E.at) events in
    check Alcotest.bool "ring is in sim-time order" true
      (List.sort compare times = times);
    for r = 0 to 3 do
      if H.accepted_batch_id t ~replica:r ~round:0 = Some 7 then begin
        let stage (e : E.t) =
          if e.E.replica <> r then None
          else
            match e.E.payload with
            | E.Slot_propose { round = 0 } -> Some `Propose
            | E.Slot_accept { round = 0; _ } -> Some `Accept
            | E.Slot_exec { round = 0; _ } -> Some `Exec
            | _ -> None
        in
        let stages = List.filter_map stage events in
        let first s =
          let rec scan i = function
            | [] -> None
            | x :: _ when x = s -> Some i
            | _ :: rest -> scan (i + 1) rest
          in
          scan 0 stages
        in
        match (first `Propose, first `Accept, first `Exec) with
        | Some p, Some a, Some e ->
            check Alcotest.bool
              (Printf.sprintf "replica %d: propose -> accept -> execute" r)
              true
              (p < a && a <= e)
        | _ ->
            Alcotest.fail
              (Printf.sprintf
                 "replica %d accepted round 0 but its trace lacks a \
                  propose/accept/execute event"
                 r)
      end
    done

  let suite =
    ( "conformance:" ^ Info.name,
      [
        Alcotest.test_case "fresh instance" `Quick test_fresh_instance;
        Alcotest.test_case "accepted_batch after accept" `Quick
          test_accept_visibility;
        Alcotest.test_case "adopt idempotence" `Quick test_adopt_idempotence;
        Alcotest.test_case "incomplete_rounds ordering" `Quick
          test_incomplete_ordering;
        Alcotest.test_case "held-batch flush after set_primary" `Quick
          test_held_batch_flush;
        Alcotest.test_case "trace order" `Quick test_trace_order;
      ] )
end

module Pbft =
  Make
    (Rcc_pbft.Pbft_instance)
    (struct
      let name = "pbft"
    end)

module Zyzzyva =
  Make
    (Rcc_zyzzyva.Zyzzyva_instance)
    (struct
      let name = "zyzzyva"
    end)

module Cft =
  Make
    (Rcc_cft.Cft_instance)
    (struct
      let name = "cft"
    end)

module Hotstuff =
  Make
    (Rcc_hotstuff.Hotstuff_replica)
    (struct
      let name = "hotstuff"
    end)

(* Regression for the layer the functor suites build on: gc_upto used to
   collect every slot <= upto even past the accept frontier, silently
   deleting not-yet-accepted rounds a checkpoint cannot cover. *)
let test_slot_log_gc_clamped_to_frontier () =
  let module SL = Rcc_proto_core.Slot_log in
  let check = Alcotest.check in
  let engine = Rcc_sim.Engine.create () in
  let log = SL.create ~engine ~init:(fun _ -> ()) () in
  for round = 0 to 9 do
    ignore (SL.get log round)
  done;
  (* Accept rounds 0..4 only: the frontier stops at 4. *)
  ignore (SL.drain log ~accept:(fun slot -> slot.SL.round <= 4));
  check Alcotest.int "frontier at the last accepted round" 4 (SL.frontier log);
  SL.gc_upto log 9;
  for round = 0 to 4 do
    check Alcotest.bool
      (Printf.sprintf "accepted round %d collected" round)
      true
      (Option.is_none (SL.find_opt log round))
  done;
  for round = 5 to 9 do
    check Alcotest.bool
      (Printf.sprintf "unaccepted round %d survives gc" round)
      true
      (Option.is_some (SL.find_opt log round))
  done;
  check
    Alcotest.(list int)
    "incomplete rounds still reported" [ 5; 6; 7; 8; 9 ]
    (SL.incomplete_rounds log);
  (* A gc below the frontier stays a plain prefix collection. *)
  ignore (SL.drain log ~accept:(fun _ -> true));
  SL.gc_upto log 7;
  check Alcotest.bool "round 8 survives partial gc" true
    (Option.is_some (SL.find_opt log 8))

let slot_log_suite =
  ( "conformance:slot_log",
    [
      Alcotest.test_case "gc clamped to frontier" `Quick
        test_slot_log_gc_clamped_to_frontier;
    ] )

let suites =
  [ Pbft.suite; Zyzzyva.suite; Cft.suite; Hotstuff.suite; slot_log_suite ]
