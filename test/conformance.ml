(* The Instance_intf.S conformance suite.

   RCC treats each protocol as a black box satisfying R1-R4 (§3.3); the
   coordinator, liveness monitor and contract recovery rely only on the
   [Instance_intf.S] surface. This functor runs one contract suite over
   any instance so a new backend proves the behaviors the rest of the
   system assumes:

   - accepted rounds are visible through [accepted_batch] on every
     replica, matching what was reported upward (R1/R2: all replicas
     accept the same batch);
   - [adopt] is idempotent — a second adopt of a decided round cannot
     change it (R4: contract recovery never rewrites history);
   - [incomplete_rounds] lists unaccepted rounds oldest-first so the
     coordinator can null-fill and contracts can target the right gap
     (R3: every started round eventually terminates);
   - batches submitted mid-leader-transfer are held and flushed, not
     dropped (the liveness half of R3 under unified recovery). *)

module Batch = Rcc_messages.Batch

module Make
    (P : Rcc_replica.Instance_intf.S) (Info : sig
      val name : string
    end) =
struct
  module H = Harness.Make (P)

  let check = Alcotest.check

  let test_fresh_instance () =
    let t = H.create ~n:4 () in
    let inst = H.inst t 2 in
    check Alcotest.bool "no accepted batch before any accept" true
      (Option.is_none (P.accepted_batch inst ~round:0));
    check
      Alcotest.(list int)
      "no incomplete rounds before any activity" []
      (P.incomplete_rounds inst)

  let test_accept_visibility () =
    let t = H.create ~n:4 () in
    H.submit t ~replica:0 (Harness.make_batch 7);
    H.run t 0.05;
    for r = 0 to 3 do
      check
        Alcotest.(option int)
        (Printf.sprintf "replica %d reported the accept upward" r)
        (Some 7)
        (H.accepted_batch_id t ~replica:r ~round:0);
      (match P.accepted_batch (H.inst t r) ~round:0 with
      | Some (b, _) ->
          check Alcotest.int
            (Printf.sprintf "replica %d serves the batch for contracts" r)
            7 b.Batch.id
      | None ->
          Alcotest.fail "accepted_batch must be available after accept");
      check
        Alcotest.(list int)
        (Printf.sprintf "replica %d has no incomplete rounds" r)
        []
        (P.incomplete_rounds (H.inst t r))
    done

  let test_adopt_idempotence () =
    let t = H.create ~n:4 () in
    let inst = H.inst t 3 in
    let first = Harness.make_batch 41 and second = Harness.make_batch 42 in
    P.adopt inst ~round:0 first ~cert:[ 0; 1; 2 ];
    (match P.accepted_batch inst ~round:0 with
    | Some (b, _) -> check Alcotest.int "adopt decides the round" 41 b.Batch.id
    | None -> Alcotest.fail "adopt must make the round available");
    P.adopt inst ~round:0 second ~cert:[ 0; 1; 2 ];
    match P.accepted_batch inst ~round:0 with
    | Some (b, _) ->
        check Alcotest.int "second adopt cannot rewrite the round" 41
          b.Batch.id
    | None -> Alcotest.fail "round must stay decided"

  let test_incomplete_ordering () =
    let t = H.create ~n:4 () in
    let inst = H.inst t 0 in
    P.adopt inst ~round:3 (Harness.make_batch 13) ~cert:[ 0; 1; 2 ];
    let rounds = P.incomplete_rounds inst in
    check
      Alcotest.(list int)
      "incomplete rounds oldest first" (List.sort compare rounds) rounds;
    (* The holes below the adopted round must all be reported; in-order
       protocols may additionally report round 3 itself until the gap
       fills. *)
    check
      Alcotest.(list int)
      "holes below the adopted round" [ 0; 1; 2 ]
      (List.filter (fun r -> r < 3) rounds);
    check Alcotest.bool "nothing past the known frontier" true
      (List.for_all (fun r -> r <= 3) rounds)

  let test_held_batch_flush () =
    let t = H.create ~n:4 ~unified:true () in
    for r = 0 to 3 do
      P.set_primary (H.inst t r) 1 ~view:1
    done;
    (* Inside the takeover window: the new primary must hold the batch
       through its recovery grace period and flush it, not drop it. *)
    H.submit t ~replica:1 (Harness.make_batch 99);
    H.run t 0.3;
    let found = ref false in
    for round = 0 to 8 do
      if H.accepted_batch_id t ~replica:0 ~round = Some 99 then found := true
    done;
    check Alcotest.bool "batch submitted mid-transfer eventually accepted"
      true !found

  let suite =
    ( "conformance:" ^ Info.name,
      [
        Alcotest.test_case "fresh instance" `Quick test_fresh_instance;
        Alcotest.test_case "accepted_batch after accept" `Quick
          test_accept_visibility;
        Alcotest.test_case "adopt idempotence" `Quick test_adopt_idempotence;
        Alcotest.test_case "incomplete_rounds ordering" `Quick
          test_incomplete_ordering;
        Alcotest.test_case "held-batch flush after set_primary" `Quick
          test_held_batch_flush;
      ] )
end

module Pbft =
  Make
    (Rcc_pbft.Pbft_instance)
    (struct
      let name = "pbft"
    end)

module Zyzzyva =
  Make
    (Rcc_zyzzyva.Zyzzyva_instance)
    (struct
      let name = "zyzzyva"
    end)

module Cft =
  Make
    (Rcc_cft.Cft_instance)
    (struct
      let name = "cft"
    end)

module Hotstuff =
  Make
    (Rcc_hotstuff.Hotstuff_replica)
    (struct
      let name = "hotstuff"
    end)

let suites = [ Pbft.suite; Zyzzyva.suite; Cft.suite; Hotstuff.suite ]
