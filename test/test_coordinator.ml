(* Unification coordinator tests: unified replacement (Lemma 5.1),
   collusion detection, recovery strategies. *)

module Coordinator = Rcc_core.Coordinator
module Exec = Rcc_replica.Exec
module Engine = Rcc_sim.Engine
module Msg = Rcc_messages.Msg
module Batch = Rcc_messages.Batch

let check = Alcotest.check

let rng = Rcc_common.Rng.create 77
let secret, _ = Rcc_crypto.Signature.keygen rng

let batch id =
  Batch.create ~id ~client:0
    ~txns:[| Rcc_workload.Txn.{ key = id; op = Write id } |]
    ~secret

type fixture = {
  engine : Engine.t;
  coordinator : Coordinator.t;
  exec : Exec.t;
  kc : Rcc_crypto.Keychain.t;
  set_primary_log : (int * int) list ref;  (* (instance, new primary) *)
  adopted : (int * int * int) list ref;  (* (instance, round, batch id) *)
  broadcasts : Msg.t list ref;
  metrics : Rcc_replica.Metrics.t;
}

let make ?(n = 7) ?(z = 3) ?(recovery = Coordinator.Optimistic)
    ?(collusion_wait = Engine.ms 10) () =
  let f = (n - 1) / 3 in
  let kc = Rcc_crypto.Keychain.create ~seed:77 ~n ~clients:1 in
  let engine = Engine.create () in
  let metrics = Rcc_replica.Metrics.create ~n ~warmup:0 () in
  let store = Rcc_storage.Kv_store.create () in
  let ledger = Rcc_storage.Ledger.create ~primaries:(List.init z (fun x -> x)) in
  let txn_table = Rcc_storage.Txn_table.create () in
  let server = Rcc_sim.Cpu.server engine ~name:"exec" () in
  let exec =
    Exec.create ~engine ~costs:Rcc_sim.Costs.default ~server ~z ~self:0 ~store
      ~ledger ~txn_table
      ~current_primaries:(fun () -> List.init z (fun x -> x))
      ~respond:(fun _ _ -> ())
      ~metrics ()
  in
  let set_primary_log = ref [] in
  let adopted = ref [] in
  let broadcasts = ref [] in
  let primaries = Array.init z (fun x -> x) in
  let handles =
    Array.init z (fun x ->
        {
          Coordinator.h_set_primary =
            (fun r ~view:_ ->
              primaries.(x) <- r;
              set_primary_log := (x, r) :: !set_primary_log);
          h_adopt =
            (fun ~round b ~cert:_ ->
              adopted := (x, round, b.Batch.id) :: !adopted);
          h_accepted = (fun ~round:_ -> None);
          h_incomplete = (fun () -> []);
          h_primary = (fun () -> primaries.(x));
        })
  in
  let coordinator =
    Coordinator.create
      {
        Coordinator.n;
        f;
        z;
        self = 0;
        collusion_wait;
        recovery;
        min_cert = 1;
        history_capacity = 64;
      }
      ~engine ~keychain:kc ~handles ~exec ~metrics
      ~broadcast:(fun ?size:_ msg -> broadcasts := msg :: !broadcasts)
      ~send:(fun ?size:_ ~dst:_ msg -> broadcasts := msg :: !broadcasts)
  in
  Exec.set_on_executed exec (fun round accs ->
      Coordinator.on_round_executed coordinator ~round accs);
  { engine; coordinator; exec; kc; set_primary_log; adopted; broadcasts; metrics }

(* A properly signed accusation from [src] at the instance's CURRENT view
   (what an honest replica's liveness monitor produces). *)
let blame fx ~src ~instance ~blamed ~round =
  let view = Coordinator.view_of fx.coordinator instance in
  let signature =
    Rcc_crypto.Signature.sign
      (Rcc_crypto.Keychain.replica_secret fx.kc src)
      (Coordinator.blame_digest ~instance ~view ~blamed ~round)
  in
  Coordinator.on_view_change fx.coordinator ~src ~instance ~view ~blamed ~round
    ~signature

(* The f+1 certificate for the view step [view - 1 -> view]: each accuser
   signs the blame digest naming the rotation's view-(view-1) primary.
   Mirrors what [process_replacements] snapshots on a real replacement. *)
let cert_for fx ~instance ~view ~deposed ~accusers =
  List.map
    (fun src ->
      {
        Msg.bv_accuser = src;
        bv_round = 0;
        bv_sig =
          Rcc_crypto.Signature.sign
            (Rcc_crypto.Keychain.replica_secret fx.kc src)
            (Coordinator.blame_digest ~instance ~view:(view - 1) ~blamed:deposed
               ~round:0);
      })
    accusers

let acceptance ~instance ~round id =
  {
    Rcc_replica.Acceptance.instance;
    round;
    batch = batch id;
    cert = [ 0; 1; 2; 3; 4 ];
    speculative = false;
    history = "";
  }

(* Make round [r] pending with every instance except [except] accepted, so
   the ordering condition of §3.4.2 is satisfiable. *)
let fill_round fx ~z ~round ~except =
  for x = 0 to z - 1 do
    if x <> except then Exec.notify fx.exec (acceptance ~instance:x ~round (100 + x))
  done

let test_unified_replacement () =
  let fx = make () in
  (* n=7, f=2: instance 1's primary gets blamed by f+1 = 3 replicas. *)
  fill_round fx ~z:3 ~round:0 ~except:1;
  blame fx ~src:3 ~instance:1 ~blamed:1 ~round:0;
  blame fx ~src:4 ~instance:1 ~blamed:1 ~round:0;
  check Alcotest.(list (pair int int)) "not yet (f blames)" [] !(fx.set_primary_log);
  Coordinator.on_local_failure fx.coordinator ~instance:1 ~round:0 ~blamed:1;
  (* n=7, z=3: instance 1's residue class is {1, 4}; view 1 picks 4. *)
  check
    Alcotest.(list (pair int int))
    "replaced with next in residue class" [ (1, 4) ] !(fx.set_primary_log);
  check Alcotest.(list int) "old primary known malicious" [ 1 ]
    (Coordinator.known_malicious fx.coordinator);
  check Alcotest.(list int) "primaries updated" [ 0; 4; 2 ]
    (Coordinator.primaries fx.coordinator);
  check Alcotest.int "replacement counted" 1 (Coordinator.replacements fx.coordinator)

let test_replacement_rotates_within_residue_class () =
  let fx = make () in
  fill_round fx ~z:3 ~round:0 ~except:1;
  (* Blame instance 1. Its primaries rotate through the residue class
     {1, 4}: other instances' classes ({0,3,6} and {2,5}) are disjoint,
     so replacements can never produce a duplicate primary even when
     replicas conclude them from divergent blame histories. *)
  List.iter
    (fun src -> blame fx ~src ~instance:1 ~blamed:1 ~round:0)
    [ 3; 4; 5 ];
  check Alcotest.(list int) "4 chosen, not 0/2" [ 0; 4; 2 ]
    (Coordinator.primaries fx.coordinator);
  (* Now instance 1's NEW primary (4) fails too: the class wraps to 1. *)
  fill_round fx ~z:3 ~round:1 ~except:1;
  List.iter
    (fun src -> blame fx ~src ~instance:1 ~blamed:4 ~round:1)
    [ 4; 5; 6 ];
  check Alcotest.(list int) "wraps back to 1" [ 0; 1; 2 ]
    (Coordinator.primaries fx.coordinator)

let test_stale_blames_ignored () =
  let fx = make () in
  fill_round fx ~z:3 ~round:0 ~except:1;
  (* Blaming a replica that is not the instance's current primary is
     ignored. *)
  List.iter
    (fun src -> blame fx ~src ~instance:1 ~blamed:2 ~round:0)
    [ 3; 4; 5 ];
  check Alcotest.(list (pair int int)) "no replacement" [] !(fx.set_primary_log)

let test_lemma_5_1_order_independence () =
  (* Two coordinators receiving the same evidence in different orders end
     with the same primary assignment (Lemma 5.1). *)
  let run order =
    let fx = make () in
    (* Round 0: only instance 0 replicated; instances 1 and 2 both have
       failed primaries, so their replacements must be handled in
       deterministic (round, instance) order regardless of evidence
       arrival order. *)
    Exec.notify fx.exec (acceptance ~instance:0 ~round:0 100);
    List.iter
      (fun (instance, blamed, src) -> blame fx ~src ~instance ~blamed ~round:0)
      order;
    Coordinator.primaries fx.coordinator
  in
  let evidence_a =
    [ (1, 1, 3); (1, 1, 4); (1, 1, 5); (2, 2, 3); (2, 2, 4); (2, 2, 5) ]
  in
  let evidence_b =
    [ (2, 2, 5); (1, 1, 4); (2, 2, 3); (1, 1, 5); (2, 2, 4); (1, 1, 3) ]
  in
  check Alcotest.(list int) "same final primaries" (run evidence_a) (run evidence_b)

let test_collusion_detected_on_spread_blames () =
  let fx = make ~collusion_wait:(Engine.ms 10) () in
  (* f+1 = 3 distinct accusers, no instance with 3: collusion. *)
  fill_round fx ~z:3 ~round:0 ~except:1;
  blame fx ~src:3 ~instance:1 ~blamed:1 ~round:0;
  blame fx ~src:4 ~instance:2 ~blamed:2 ~round:0;
  blame fx ~src:5 ~instance:0 ~blamed:0 ~round:0;
  Engine.run fx.engine ~until:(Engine.ms 50);
  check Alcotest.int "collusion detected" 1
    (Rcc_replica.Metrics.collusions_detected fx.metrics);
  check Alcotest.bool "contract broadcast" true
    (List.exists (function Msg.Contract _ -> true | _ -> false) !(fx.broadcasts));
  check Alcotest.(list (pair int int)) "no replacement on false alarm" []
    !(fx.set_primary_log)

let test_no_collusion_below_threshold () =
  let fx = make ~collusion_wait:(Engine.ms 10) () in
  blame fx ~src:3 ~instance:1 ~blamed:1 ~round:0;
  blame fx ~src:4 ~instance:2 ~blamed:2 ~round:0;
  Engine.run fx.engine ~until:(Engine.ms 200);
  check Alcotest.int "no collusion with f accusers" 0
    (Rcc_replica.Metrics.collusions_detected fx.metrics)

let test_collusion_redetects_after_recovery () =
  let fx = make ~collusion_wait:(Engine.ms 10) () in
  let feed () =
    blame fx ~src:3 ~instance:1 ~blamed:1 ~round:0;
    blame fx ~src:4 ~instance:2 ~blamed:2 ~round:0;
    blame fx ~src:5 ~instance:0 ~blamed:0 ~round:0
  in
  fill_round fx ~z:3 ~round:0 ~except:1;
  feed ();
  Engine.run fx.engine ~until:(Engine.ms 50);
  check Alcotest.int "first episode" 1
    (Rcc_replica.Metrics.collusions_detected fx.metrics);
  (* A later, separate attack: evidence arrives again and must re-arm the
     timer (blames were cleared after recovery). *)
  feed ();
  Engine.run fx.engine ~until:(Engine.ms 100);
  check Alcotest.int "second episode detected" 2
    (Rcc_replica.Metrics.collusions_detected fx.metrics)

let test_view_shift_recovery () =
  let fx = make ~recovery:Coordinator.View_shift () in
  fill_round fx ~z:3 ~round:0 ~except:1;
  blame fx ~src:3 ~instance:1 ~blamed:1 ~round:0;
  blame fx ~src:4 ~instance:2 ~blamed:2 ~round:0;
  blame fx ~src:5 ~instance:0 ~blamed:0 ~round:0;
  Engine.run fx.engine ~until:(Engine.ms 50);
  (* Every instance moved to a fresh primary set. *)
  check Alcotest.int "three set_primary calls" 3 (List.length !(fx.set_primary_log));
  check Alcotest.bool "primaries rotated" true
    (Coordinator.primaries fx.coordinator <> [ 0; 1; 2 ])

let test_pessimistic_contract_every_round () =
  let fx = make ~recovery:Coordinator.Pessimistic () in
  Coordinator.on_round_executed fx.coordinator ~round:0
    [| acceptance ~instance:0 ~round:0 1 |];
  Coordinator.on_round_executed fx.coordinator ~round:1
    [| acceptance ~instance:0 ~round:1 2 |];
  let contracts =
    List.length
      (List.filter (function Msg.Contract _ -> true | _ -> false) !(fx.broadcasts))
  in
  check Alcotest.int "contract per round" 2 contracts

let test_on_contract_adopts () =
  let fx = make () in
  let entry =
    {
      Msg.ce_instance = 1;
      ce_round = 4;
      ce_batch = batch 9;
      ce_cert_replicas = [ 0; 1; 2 ];
    }
  in
  Coordinator.on_contract fx.coordinator (Msg.Contract { round = 4; entries = [ entry ] });
  check Alcotest.(list (triple int int int)) "adopted" [ (1, 4, 9) ] !(fx.adopted)

let test_on_contract_rejects_thin_proof () =
  let fx = make () in
  (* min_cert is 1 in the fixture; build one with an empty proof. *)
  let entry =
    { Msg.ce_instance = 1; ce_round = 4; ce_batch = batch 9; ce_cert_replicas = [] }
  in
  Coordinator.on_contract fx.coordinator (Msg.Contract { round = 4; entries = [ entry ] });
  check Alcotest.(list (triple int int int)) "nothing adopted" [] !(fx.adopted)

let test_contract_request_answered_from_history () =
  let fx = make () in
  (* Execute round 0 so it lands in coordinator history. *)
  fill_round fx ~z:3 ~round:0 ~except:(-1);
  Engine.run fx.engine ~until:(Engine.ms 100);
  Coordinator.on_contract_request fx.coordinator ~src:5 ~round:0;
  check Alcotest.bool "contract served" true
    (List.exists
       (function
         | Msg.Contract { round = 0; entries } -> List.length entries = 3
         | _ -> false)
       !(fx.broadcasts))

(* --- certificate-backed view sync --------------------------------------- *)

let test_view_sync_certified_adoption () =
  let fx = make () in
  let cert = cert_for fx ~instance:1 ~view:1 ~deposed:1 ~accusers:[ 3; 4; 5 ] in
  (* The sender lies about both the primary and kmal; neither is trusted —
     the rotation recomputes them from the certified view. *)
  Coordinator.on_view_sync fx.coordinator ~instance:1 ~view:1 ~primary:6
    ~kmal:[ 6 ] ~cert;
  check Alcotest.int "view adopted" 1 (Coordinator.view_of fx.coordinator 1);
  check Alcotest.int "primary from rotation, not sender" 4
    (Coordinator.primary_of fx.coordinator 1);
  check Alcotest.(list int) "kmal from rotation, not sender" [ 1 ]
    (Coordinator.known_malicious fx.coordinator);
  check Alcotest.int "skipped step counted" 1
    (Coordinator.replacements fx.coordinator)

let test_view_sync_rejects_forged_cert () =
  let fx = make () in
  let reject label cert =
    Coordinator.on_view_sync fx.coordinator ~instance:1 ~view:1 ~primary:4
      ~kmal:[] ~cert;
    check Alcotest.int (label ^ ": view unmoved") 0
      (Coordinator.view_of fx.coordinator 1);
    check Alcotest.int (label ^ ": primary unmoved") 1
      (Coordinator.primary_of fx.coordinator 1);
    check Alcotest.int (label ^ ": no replacement") 0
      (Coordinator.replacements fx.coordinator)
  in
  reject "empty" [];
  (* The forged-view attack: votes signed with replica 6's own key but
     attributed to accusers 3, 4, 5 — verification under the claimed
     accusers' keys must fail. *)
  reject "forged signer"
    (List.map
       (fun src ->
         {
           Msg.bv_accuser = src;
           bv_round = 0;
           bv_sig =
             Rcc_crypto.Signature.sign
               (Rcc_crypto.Keychain.replica_secret fx.kc 6)
               (Coordinator.blame_digest ~instance:1 ~view:0 ~blamed:1 ~round:0);
         })
       [ 3; 4; 5 ]);
  (* f+1 valid votes from the SAME accuser are one accusation, not a
     quorum. *)
  reject "duplicate accuser"
    (cert_for fx ~instance:1 ~view:1 ~deposed:1 ~accusers:[ 3; 3; 3 ]);
  (* A certificate binds its view step: votes for 0 -> 1 cannot be
     replayed as evidence for 1 -> 2. *)
  Coordinator.on_view_sync fx.coordinator ~instance:1 ~view:2 ~primary:1
    ~kmal:[]
    ~cert:(cert_for fx ~instance:1 ~view:1 ~deposed:1 ~accusers:[ 3; 4; 5 ]);
  check Alcotest.int "replayed cert rejected" 0
    (Coordinator.view_of fx.coordinator 1)

let test_view_sync_multi_step () =
  let fx = make () in
  (* Jump 0 -> 2 on the strength of the FINAL step's certificate alone: at
     least one honest replica stood in that view-1 blame quorum, and
     honest replicas only reach view 1 through a certified step. *)
  let cert = cert_for fx ~instance:1 ~view:2 ~deposed:4 ~accusers:[ 2; 5; 6 ] in
  Coordinator.on_view_sync fx.coordinator ~instance:1 ~view:2 ~primary:0
    ~kmal:[] ~cert;
  check Alcotest.int "view jumped to 2" 2 (Coordinator.view_of fx.coordinator 1);
  (* Instance 1's pool {1, 4} wraps: view 2 re-seats replica 1. *)
  check Alcotest.int "primary recomputed across the wrap" 1
    (Coordinator.primary_of fx.coordinator 1);
  check Alcotest.(list int) "skipped primaries marked malicious" [ 1; 4 ]
    (Coordinator.known_malicious fx.coordinator);
  check Alcotest.int "both steps counted" 2
    (Coordinator.replacements fx.coordinator)

let test_view_sync_cancels_pending () =
  let fx = make () in
  (* Quorum against instance 1 parks behind the §3.4.2 ordering condition:
     no other instance has replicated round 0 yet. *)
  List.iter (fun src -> blame fx ~src ~instance:1 ~blamed:1 ~round:0) [ 3; 4; 5 ];
  check Alcotest.int "parked, not replaced" 0
    (Coordinator.replacements fx.coordinator);
  let cert = cert_for fx ~instance:1 ~view:1 ~deposed:1 ~accusers:[ 3; 4; 5 ] in
  Coordinator.on_view_sync fx.coordinator ~instance:1 ~view:1 ~primary:4
    ~kmal:[] ~cert;
  check Alcotest.int "adopted via sync" 1 (Coordinator.replacements fx.coordinator);
  (* The parked entry must be gone: once instances 0 and 2 accept round 0
     the old entry's §3.4.2 ordering condition becomes satisfiable, and
     the next pass over the queue must not drag instance 1 through a
     second, phantom view step. *)
  fill_round fx ~z:3 ~round:0 ~except:1;
  List.iter (fun src -> blame fx ~src ~instance:2 ~blamed:2 ~round:0) [ 3; 4; 5 ];
  check Alcotest.int "no phantom second step" 1
    (Coordinator.view_of fx.coordinator 1);
  check Alcotest.int "instance 1 keeps primary 4" 4
    (Coordinator.primary_of fx.coordinator 1);
  check Alcotest.int "no phantom replacement counted" 1
    (Coordinator.replacements fx.coordinator)

let test_view_sync_converges_replicas () =
  (* Replica A performs a real replacement from a blame quorum; replica B
     missed it and adopts from A's gossip. Their coordinator state —
     primaries, views, replacement counts — must converge exactly, which
     is what the chaos invariant checks cluster-wide. *)
  let a = make () in
  fill_round a ~z:3 ~round:0 ~except:1;
  List.iter (fun src -> blame a ~src ~instance:1 ~blamed:1 ~round:0) [ 3; 4; 5 ];
  let b = make () in
  Coordinator.on_view_sync b.coordinator ~instance:1
    ~view:(Coordinator.view_of a.coordinator 1)
    ~primary:(Coordinator.primary_of a.coordinator 1)
    ~kmal:(Coordinator.known_malicious a.coordinator)
    ~cert:(Coordinator.cert_of a.coordinator 1);
  check
    Alcotest.(list int)
    "primaries converged"
    (Coordinator.primaries a.coordinator)
    (Coordinator.primaries b.coordinator);
  check Alcotest.int "views converged"
    (Coordinator.view_of a.coordinator 1)
    (Coordinator.view_of b.coordinator 1);
  check Alcotest.int "replacements converged"
    (Coordinator.replacements a.coordinator)
    (Coordinator.replacements b.coordinator)

(* --- view-shift collision regression ------------------------------------ *)

let test_view_shift_distinct_primaries () =
  (* n=4, z=2, f=1. Two unified replacements of instance 0 put {0, 2} into
     kmal; the subsequent view shift (base 2) must not seat replica 3 as
     the primary of BOTH instances (the kmal-skip collision). *)
  let fx = make ~n:4 ~z:2 ~recovery:Coordinator.View_shift () in
  fill_round fx ~z:2 ~round:0 ~except:0;
  List.iter (fun src -> blame fx ~src ~instance:0 ~blamed:0 ~round:0) [ 1; 3 ];
  check Alcotest.int "first replacement" 2 (Coordinator.primary_of fx.coordinator 0);
  List.iter (fun src -> blame fx ~src ~instance:0 ~blamed:2 ~round:0) [ 1; 3 ];
  check Alcotest.(list int) "kmal primed" [ 0; 2 ]
    (Coordinator.known_malicious fx.coordinator);
  (* Spread blames: two accusers, no primary with two — collusion, answered
     by a whole-set view shift under this recovery mode. *)
  blame fx ~src:1 ~instance:0 ~blamed:(Coordinator.primary_of fx.coordinator 0)
    ~round:0;
  blame fx ~src:3 ~instance:1 ~blamed:1 ~round:0;
  Engine.run fx.engine ~until:(Engine.ms 50);
  let ps = Coordinator.primaries fx.coordinator in
  check Alcotest.int "shift happened" 2 (List.length ps);
  check Alcotest.int "primaries pairwise distinct" 2
    (List.length (List.sort_uniq compare ps))

(* --- stale-accuser pruning ----------------------------------------------- *)

let test_stale_accusers_expire_with_window () =
  let fx = make ~collusion_wait:(Engine.ms 10) () in
  fill_round fx ~z:3 ~round:0 ~except:(-1);
  Engine.run fx.engine ~until:(Engine.ms 5);
  (* Two replicas catching up after a crash blame round 0 — already
     executed here, so the accusations are stale. *)
  blame fx ~src:3 ~instance:1 ~blamed:1 ~round:0;
  blame fx ~src:4 ~instance:2 ~blamed:2 ~round:0;
  (* Execution keeps advancing and the collusion window they opened
     closes inconclusive: the stale marks must expire with it rather
     than linger forever. *)
  fill_round fx ~z:3 ~round:1 ~except:(-1);
  Engine.run fx.engine ~until:(Engine.ms 30);
  (* A single fresh accusation in a much later window must not combine
     with the long-gone stale pair into a phantom f+1 collusion alarm. *)
  blame fx ~src:5 ~instance:0 ~blamed:0 ~round:2;
  Engine.run fx.engine ~until:(Engine.ms 100);
  check Alcotest.int "no phantom collusion" 0
    (Rcc_replica.Metrics.collusions_detected fx.metrics)

let suite =
  ( "coordinator",
    [
      Alcotest.test_case "unified replacement" `Quick test_unified_replacement;
      Alcotest.test_case "rotates within residue class" `Quick
        test_replacement_rotates_within_residue_class;
      Alcotest.test_case "stale blames ignored" `Quick test_stale_blames_ignored;
      Alcotest.test_case "Lemma 5.1 order independence" `Quick
        test_lemma_5_1_order_independence;
      Alcotest.test_case "collusion detection" `Quick
        test_collusion_detected_on_spread_blames;
      Alcotest.test_case "no collusion below f+1" `Quick test_no_collusion_below_threshold;
      Alcotest.test_case "collusion re-detection" `Quick
        test_collusion_redetects_after_recovery;
      Alcotest.test_case "view-shift recovery" `Quick test_view_shift_recovery;
      Alcotest.test_case "pessimistic contracts" `Quick
        test_pessimistic_contract_every_round;
      Alcotest.test_case "contract adoption" `Quick test_on_contract_adopts;
      Alcotest.test_case "thin proof rejected" `Quick test_on_contract_rejects_thin_proof;
      Alcotest.test_case "contract request from history" `Quick
        test_contract_request_answered_from_history;
      Alcotest.test_case "view-sync certified adoption" `Quick
        test_view_sync_certified_adoption;
      Alcotest.test_case "view-sync rejects forged certs" `Quick
        test_view_sync_rejects_forged_cert;
      Alcotest.test_case "view-sync multi-step jump" `Quick test_view_sync_multi_step;
      Alcotest.test_case "view-sync cancels pending replacement" `Quick
        test_view_sync_cancels_pending;
      Alcotest.test_case "view-sync converges replicas" `Quick
        test_view_sync_converges_replicas;
      Alcotest.test_case "view-shift primaries distinct" `Quick
        test_view_shift_distinct_primaries;
      Alcotest.test_case "stale accusers expire with window" `Quick
        test_stale_accusers_expire_with_window;
    ] )
